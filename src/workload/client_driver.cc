#include "workload/client_driver.h"

namespace apollo::workload {

void ClientContext::Query(const std::string& sql,
                          std::function<void(common::ResultSetPtr)> then) {
  if (trace_ != nullptr) trace_->push_back(sql);
  util::SimTime submit = loop_->now();
  middleware_->SubmitQuery(
      id_, sql,
      [this, submit, then = std::move(then)](
          util::Result<common::ResultSetPtr> result) {
        if (metrics_ != nullptr && submit < record_deadline_) {
          metrics_->Record(submit, loop_->now() - submit);
        }
        if (!result.ok()) {
          ++errors_;
          then(nullptr);
          return;
        }
        then(std::move(*result));
      });
}

ClientDriver::ClientDriver(sim::EventLoop* loop,
                           core::Middleware* middleware, core::ClientId id,
                           std::unique_ptr<WorkloadClient> behaviour,
                           uint64_t seed)
    : loop_(loop),
      rng_(seed),
      ctx_(loop, middleware, id, &rng_),
      behaviour_(std::move(behaviour)) {}

void ClientDriver::Start(util::SimTime end_time) {
  end_time_ = end_time;
  // Desynchronize client start-up with a fraction of a think time.
  double initial =
      rng_.Exponential(behaviour_->MeanThinkSeconds() * 0.25);
  loop_->After(util::Seconds(initial), [this]() { RunOnce(); });
}

void ClientDriver::RunOnce() {
  if (loop_->now() >= end_time_) return;
  if (pending_behaviour_ != nullptr) {
    behaviour_ = std::move(pending_behaviour_);
  }
  behaviour_->RunInteraction(ctx_, [this]() { ScheduleNext(); });
}

void ClientDriver::ScheduleNext() {
  double think = rng_.Exponential(behaviour_->MeanThinkSeconds());
  loop_->After(util::Seconds(think), [this]() { RunOnce(); });
}

}  // namespace apollo::workload
