// TPC-C order-entry workload with the paper's modified read-heavy mix
// (Section 4.3): 5% Payment, 47.5% Order Status, 47.5% Stock Level, with
// warehouses chosen uniformly.
//
// Scaling substitutions (see DESIGN.md): warehouses/districts/customers are
// scaled to laptop size; Stock Level's client-side `next_o_id - 20`
// arithmetic is pushed into the district query's select list so the window
// bound flows through Apollo's value-equality parameter mappings, matching
// the paper's predictable Stock Level behaviour.
#pragma once

#include <string>

#include "workload/workload.h"

namespace apollo::workload {

struct TpccConfig {
  // Scaled from the paper's 1000-warehouse / 100 GB database to laptop
  // size while preserving what drives the comparison: the instance space
  // (1000 districts, 500k customers) is large enough relative to the
  // query volume that exact query instances rarely recur, so passive
  // caching sees mostly cold reads while Apollo's template-level
  // prediction generalizes (paper Section 4.3).
  int num_warehouses = 2000;
  int districts_per_warehouse = 10;
  int customers_per_district = 100;
  int num_items = 500;
  int orders_per_district = 20;
  double mean_think_seconds = 10.0;  // keying + think, TPC-C clause 5.2.5
  double payment_fraction = 0.05;       // rest split evenly between
  double order_status_fraction = 0.475; // Order Status and Stock Level
  /// 0 = uniform warehouse choice (the paper's setting). > 0 = Zipf
  /// exponent for skewed warehouse popularity; the paper notes uniform
  /// "results in more predictive executions than a skewed Zipf
  /// distribution — recall that Apollo will not predictively execute
  /// queries that are already cached".
  double warehouse_zipf_theta = 0.0;
  std::string table_prefix;
  uint64_t seed = 77;
};

class TpccWorkload : public Workload {
 public:
  explicit TpccWorkload(TpccConfig config = {});

  std::string name() const override { return "tpcc"; }
  util::Status Setup(db::Database* db) override;
  std::unique_ptr<WorkloadClient> MakeClient(int index,
                                             uint64_t seed) override;

  const TpccConfig& config() const { return config_; }
  std::string T(const std::string& base) const {
    return config_.table_prefix + base;
  }

 private:
  TpccConfig config_;
};

}  // namespace apollo::workload
