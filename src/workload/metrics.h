// RunMetrics: response-time measurement for one experiment phase.
//
// Records per-query response times (the paper's primary metric) into a
// histogram plus a bucketed time series for the learning-over-time and
// workload-shift figures.
#pragma once

#include <cstdint>
#include <vector>

#include "util/histogram.h"
#include "util/sim_time.h"

namespace apollo::workload {

class RunMetrics {
 public:
  /// `bucket_percentiles` additionally keeps a per-bucket histogram so the
  /// timeline can report tail latency per bucket (outage-recovery bench).
  RunMetrics(util::SimTime origin, util::SimDuration bucket_width,
             bool bucket_percentiles = false)
      : origin_(origin),
        bucket_width_(bucket_width),
        bucket_percentiles_(bucket_percentiles) {}

  /// Records a query that was submitted at `submit_time` and took
  /// `response_time`.
  void Record(util::SimTime submit_time, util::SimDuration response_time);

  const util::Histogram& histogram() const { return hist_; }
  double MeanMs() const { return hist_.Mean() / 1000.0; }
  double PercentileMs(double p) const {
    return static_cast<double>(hist_.Percentile(p)) / 1000.0;
  }
  uint64_t count() const { return hist_.count(); }

  /// (bucket start minute, mean response ms) series. `p99_ms` is filled
  /// only when the metrics were built with bucket_percentiles.
  struct TimelinePoint {
    double minute;
    double mean_ms;
    double p99_ms = 0.0;
    uint64_t count;
  };
  std::vector<TimelinePoint> Timeline() const;

 private:
  util::SimTime origin_;
  util::SimDuration bucket_width_;
  bool bucket_percentiles_ = false;
  util::Histogram hist_;
  std::vector<double> bucket_sum_us_;
  std::vector<uint64_t> bucket_count_;
  std::vector<util::Histogram> bucket_hist_;
};

}  // namespace apollo::workload
