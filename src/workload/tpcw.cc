#include "workload/tpcw.h"

#include <algorithm>

#include "common/value.h"

namespace apollo::workload {

namespace {

using common::Value;

std::string RandName(util::Rng& rng, const char* stem) {
  return std::string(stem) + std::to_string(rng.UniformInt(0, 499));
}

}  // namespace

const std::vector<std::string>& TpcwWorkload::Subjects() {
  static const std::vector<std::string> kSubjects = {
      "ARTS",       "BIOGRAPHIES", "BUSINESS",  "CHILDREN",
      "COMPUTERS",  "COOKING",     "HEALTH",    "HISTORY",
      "HOME",       "HUMOR",       "LITERATURE", "MYSTERY",
      "NON-FICTION", "PARENTING",  "POLITICS",  "REFERENCE",
      "RELIGION",   "ROMANCE",     "SELF-HELP", "SCIENCE-NATURE",
      "SCIENCE-FICTION", "SPORTS", "YOUTH",     "TRAVEL"};
  return kSubjects;
}

TpcwWorkload::TpcwWorkload(TpcwConfig config) : config_(std::move(config)) {
  next_order_id_ = config_.num_orders + 1;
}

util::Status TpcwWorkload::Setup(db::Database* db) {
  using common::ValueType;
  util::Rng rng(config_.seed);
  const auto& subjects = Subjects();

  // ---- Schemas ----
  {
    db::Schema s(T("COUNTRY"), {{"CO_ID", ValueType::kInt},
                                {"CO_NAME", ValueType::kString}});
    s.AddIndex("PRIMARY", {"CO_ID"});
    APOLLO_RETURN_NOT_OK(db->CreateTable(std::move(s)));
  }
  {
    db::Schema s(T("AUTHOR"), {{"A_ID", ValueType::kInt},
                               {"A_FNAME", ValueType::kString},
                               {"A_LNAME", ValueType::kString}});
    s.AddIndex("PRIMARY", {"A_ID"});
    s.AddIndex("A_LNAME_IDX", {"A_LNAME"});
    APOLLO_RETURN_NOT_OK(db->CreateTable(std::move(s)));
  }
  {
    db::Schema s(T("ADDRESS"), {{"ADDR_ID", ValueType::kInt},
                                {"ADDR_STREET1", ValueType::kString},
                                {"ADDR_CITY", ValueType::kString},
                                {"ADDR_CO_ID", ValueType::kInt}});
    s.AddIndex("PRIMARY", {"ADDR_ID"});
    APOLLO_RETURN_NOT_OK(db->CreateTable(std::move(s)));
  }
  {
    db::Schema s(T("CUSTOMER"), {{"C_ID", ValueType::kInt},
                                 {"C_UNAME", ValueType::kString},
                                 {"C_PASSWD", ValueType::kString},
                                 {"C_FNAME", ValueType::kString},
                                 {"C_LNAME", ValueType::kString},
                                 {"C_ADDR_ID", ValueType::kInt},
                                 {"C_DISCOUNT", ValueType::kDouble},
                                 {"C_SINCE", ValueType::kInt}});
    s.AddIndex("PRIMARY", {"C_ID"});
    s.AddIndex("C_UNAME_IDX", {"C_UNAME"});
    APOLLO_RETURN_NOT_OK(db->CreateTable(std::move(s)));
  }
  {
    db::Schema s(T("ITEM"), {{"I_ID", ValueType::kInt},
                             {"I_TITLE", ValueType::kString},
                             {"I_A_ID", ValueType::kInt},
                             {"I_SUBJECT", ValueType::kString},
                             {"I_COST", ValueType::kDouble},
                             {"I_STOCK", ValueType::kInt},
                             {"I_PUB_DATE", ValueType::kInt},
                             {"I_RELATED1", ValueType::kInt},
                             {"I_RELATED2", ValueType::kInt},
                             {"I_RELATED3", ValueType::kInt},
                             {"I_RELATED4", ValueType::kInt},
                             {"I_RELATED5", ValueType::kInt}});
    s.AddIndex("PRIMARY", {"I_ID"});
    s.AddIndex("I_SUBJECT_IDX", {"I_SUBJECT"});
    s.AddIndex("I_A_ID_IDX", {"I_A_ID"});
    APOLLO_RETURN_NOT_OK(db->CreateTable(std::move(s)));
  }
  {
    db::Schema s(T("ORDERS"), {{"O_ID", ValueType::kInt},
                               {"O_C_ID", ValueType::kInt},
                               {"O_DATE", ValueType::kInt},
                               {"O_TOTAL", ValueType::kDouble},
                               {"O_SHIP_ADDR_ID", ValueType::kInt},
                               {"O_STATUS", ValueType::kString}});
    s.AddIndex("PRIMARY", {"O_ID"});
    s.AddIndex("O_C_ID_IDX", {"O_C_ID"});
    APOLLO_RETURN_NOT_OK(db->CreateTable(std::move(s)));
  }
  {
    db::Schema s(T("ORDER_LINE"), {{"OL_ID", ValueType::kInt},
                                   {"OL_O_ID", ValueType::kInt},
                                   {"OL_I_ID", ValueType::kInt},
                                   {"OL_QTY", ValueType::kInt},
                                   {"OL_DISCOUNT", ValueType::kDouble}});
    s.AddIndex("PRIMARY", {"OL_ID"});
    s.AddIndex("OL_O_ID_IDX", {"OL_O_ID"});
    s.AddIndex("OL_I_ID_IDX", {"OL_I_ID"});
    APOLLO_RETURN_NOT_OK(db->CreateTable(std::move(s)));
  }
  {
    db::Schema s(T("CC_XACTS"), {{"CX_O_ID", ValueType::kInt},
                                 {"CX_TYPE", ValueType::kString},
                                 {"CX_AMT", ValueType::kDouble},
                                 {"CX_CO_ID", ValueType::kInt}});
    s.AddIndex("CX_O_ID_IDX", {"CX_O_ID"});
    APOLLO_RETURN_NOT_OK(db->CreateTable(std::move(s)));
  }
  {
    db::Schema s(T("SHOPPING_CART"), {{"SC_ID", ValueType::kInt},
                                      {"SC_TIME", ValueType::kInt}});
    s.AddIndex("PRIMARY", {"SC_ID"});
    APOLLO_RETURN_NOT_OK(db->CreateTable(std::move(s)));
  }
  {
    db::Schema s(T("SHOPPING_CART_LINE"),
                 {{"SCL_SC_ID", ValueType::kInt},
                  {"SCL_I_ID", ValueType::kInt},
                  {"SCL_QTY", ValueType::kInt}});
    s.AddIndex("SCL_SC_ID_IDX", {"SCL_SC_ID"});
    APOLLO_RETURN_NOT_OK(db->CreateTable(std::move(s)));
  }

  // ---- Data ----
  db::Table* country = db->GetTable(T("COUNTRY"));
  for (int i = 1; i <= config_.num_countries; ++i) {
    APOLLO_RETURN_NOT_OK(country->Insert(
        {Value::Int(i), Value::Str("COUNTRY" + std::to_string(i))}));
  }

  db::Table* author = db->GetTable(T("AUTHOR"));
  for (int i = 1; i <= config_.num_authors; ++i) {
    APOLLO_RETURN_NOT_OK(author->Insert({Value::Int(i),
                                         Value::Str(RandName(rng, "FN")),
                                         Value::Str(RandName(rng, "LN"))}));
  }

  db::Table* address = db->GetTable(T("ADDRESS"));
  const int num_addresses = config_.num_customers * 2;
  for (int i = 1; i <= num_addresses; ++i) {
    APOLLO_RETURN_NOT_OK(address->Insert(
        {Value::Int(i), Value::Str("STREET" + std::to_string(i % 1000)),
         Value::Str("CITY" + std::to_string(i % 200)),
         Value::Int(rng.UniformInt(1, config_.num_countries))}));
  }

  db::Table* customer = db->GetTable(T("CUSTOMER"));
  for (int i = 1; i <= config_.num_customers; ++i) {
    APOLLO_RETURN_NOT_OK(customer->Insert(
        {Value::Int(i), Value::Str("USER" + std::to_string(i)),
         Value::Str("PWD" + std::to_string(i)),
         Value::Str(RandName(rng, "FN")), Value::Str(RandName(rng, "LN")),
         Value::Int(rng.UniformInt(1, num_addresses)),
         Value::Double(rng.UniformInt(0, 50) / 100.0),
         Value::Int(static_cast<int64_t>(rng.UniformInt(1, 3650)))}));
  }

  db::Table* item = db->GetTable(T("ITEM"));
  for (int i = 1; i <= config_.num_items; ++i) {
    auto rel = [&]() {
      return Value::Int(rng.UniformInt(1, config_.num_items));
    };
    APOLLO_RETURN_NOT_OK(item->Insert(
        {Value::Int(i), Value::Str("TITLE" + std::to_string(i)),
         Value::Int(rng.UniformInt(1, config_.num_authors)),
         Value::Str(subjects[rng.UniformInt(
             0, static_cast<int64_t>(subjects.size()) - 1)]),
         Value::Double(1.0 + rng.UniformInt(0, 9999) / 100.0),
         Value::Int(rng.UniformInt(10, 30)),
         Value::Int(rng.UniformInt(1, 3650)), rel(), rel(), rel(), rel(),
         rel()}));
  }

  db::Table* orders = db->GetTable(T("ORDERS"));
  db::Table* order_line = db->GetTable(T("ORDER_LINE"));
  db::Table* cc = db->GetTable(T("CC_XACTS"));
  int64_t ol_id = 1;
  for (int o = 1; o <= config_.num_orders; ++o) {
    int64_t c_id = rng.UniformInt(1, config_.num_customers);
    double total = 0;
    int lines = static_cast<int>(rng.UniformInt(1, 5));
    for (int l = 0; l < lines; ++l) {
      int64_t i_id = rng.UniformInt(1, config_.num_items);
      int64_t qty = rng.UniformInt(1, 4);
      total += static_cast<double>(qty) * 25.0;
      APOLLO_RETURN_NOT_OK(order_line->Insert(
          {Value::Int(ol_id++), Value::Int(o), Value::Int(i_id),
           Value::Int(qty),
           Value::Double(rng.UniformInt(0, 30) / 100.0)}));
    }
    APOLLO_RETURN_NOT_OK(orders->Insert(
        {Value::Int(o), Value::Int(c_id),
         Value::Int(rng.UniformInt(1, 3650)), Value::Double(total),
         Value::Int(rng.UniformInt(1, num_addresses)),
         Value::Str("SHIPPED")}));
    APOLLO_RETURN_NOT_OK(
        cc->Insert({Value::Int(o), Value::Str("VISA"), Value::Double(total),
                    Value::Int(rng.UniformInt(1, config_.num_countries))}));
  }
  return util::Status::OK();
}

namespace {

/// Steady-state interaction shares of the TPC-W browsing mix (WIPSb),
/// indexed by TpcwInteraction.
constexpr double kBrowsingMix[] = {
    0.2900,   // Home
    0.1100,   // New Products
    0.1100,   // Best Sellers
    0.2100,   // Product Detail
    0.1200,   // Search Request
    0.1100,   // Search Results
    0.0200,   // Shopping Cart
    0.0082,   // Customer Registration
    0.0075,   // Buy Request
    0.0069,   // Buy Confirm
    0.0030,   // Order Inquiry
    0.0025,   // Order Display
    0.0010,   // Admin Request
    0.0009,   // Admin Confirm
};

class TpcwClient : public WorkloadClient {
 public:
  TpcwClient(TpcwWorkload* workload, int index, uint64_t seed)
      : w_(workload), rng_(seed) {
    c_id_ = 1 + index % workload->config().num_customers;
    uname_ = "USER" + std::to_string(c_id_);
    passwd_ = "PWD" + std::to_string(c_id_);
    mix_.assign(std::begin(kBrowsingMix), std::end(kBrowsingMix));
    if (workload->config().item_zipf_theta > 0) {
      item_zipf_ = std::make_unique<util::Zipf>(
          static_cast<uint64_t>(workload->config().num_items),
          workload->config().item_zipf_theta);
    }
  }

  double MeanThinkSeconds() const override {
    return w_->config().mean_think_seconds;
  }

  void RunInteraction(ClientContext& ctx,
                      std::function<void()> done) override {
    TpcwInteraction next = PickNext();
    last_ = next;
    switch (next) {
      case TpcwInteraction::kHome: return Home(ctx, std::move(done));
      case TpcwInteraction::kNewProducts:
        return NewProducts(ctx, std::move(done));
      case TpcwInteraction::kBestSellers:
        return BestSellers(ctx, std::move(done));
      case TpcwInteraction::kProductDetail:
        return ProductDetail(ctx, std::move(done));
      case TpcwInteraction::kSearchRequest:
        return SearchRequest(ctx, std::move(done));
      case TpcwInteraction::kSearchResults:
        return SearchResults(ctx, std::move(done));
      case TpcwInteraction::kShoppingCart:
        return ShoppingCart(ctx, std::move(done));
      case TpcwInteraction::kCustomerRegistration:
        return CustomerRegistration(ctx, std::move(done));
      case TpcwInteraction::kBuyRequest:
        return BuyRequest(ctx, std::move(done));
      case TpcwInteraction::kBuyConfirm:
        return BuyConfirm(ctx, std::move(done));
      case TpcwInteraction::kOrderInquiry:
        return OrderInquiry(ctx, std::move(done));
      case TpcwInteraction::kOrderDisplay:
        return OrderDisplay(ctx, std::move(done));
      case TpcwInteraction::kAdminRequest:
        return AdminRequest(ctx, std::move(done));
      case TpcwInteraction::kAdminConfirm:
        return AdminConfirm(ctx, std::move(done));
      default: return done();
    }
  }

 private:
  /// Next interaction: natural successor transitions first, otherwise a
  /// draw from the browsing-mix distribution (approximating the spec's
  /// per-state transition matrix).
  TpcwInteraction PickNext() {
    switch (last_) {
      case TpcwInteraction::kSearchRequest:
        if (rng_.Bernoulli(0.90)) return TpcwInteraction::kSearchResults;
        break;
      case TpcwInteraction::kCustomerRegistration:
        if (rng_.Bernoulli(0.80)) return TpcwInteraction::kBuyRequest;
        break;
      case TpcwInteraction::kBuyRequest:
        if (rng_.Bernoulli(0.70)) return TpcwInteraction::kBuyConfirm;
        break;
      case TpcwInteraction::kOrderInquiry:
        if (rng_.Bernoulli(0.75)) return TpcwInteraction::kOrderDisplay;
        break;
      case TpcwInteraction::kAdminRequest:
        if (rng_.Bernoulli(0.80)) return TpcwInteraction::kAdminConfirm;
        break;
      default:
        break;
    }
    auto pick = static_cast<TpcwInteraction>(rng_.Discrete(mix_));
    // Buy Confirm / Admin Confirm / Search Results / Order Display only
    // make sense after their precursor; redirect stray draws.
    if (pick == TpcwInteraction::kBuyConfirm) {
      pick = TpcwInteraction::kBuyRequest;
    } else if (pick == TpcwInteraction::kAdminConfirm) {
      pick = TpcwInteraction::kAdminRequest;
    } else if (pick == TpcwInteraction::kSearchResults) {
      pick = TpcwInteraction::kSearchRequest;
    } else if (pick == TpcwInteraction::kOrderDisplay) {
      pick = TpcwInteraction::kOrderInquiry;
    }
    return pick;
  }

  int64_t RandomItem() {
    if (item_zipf_ != nullptr) {
      return static_cast<int64_t>(item_zipf_->Next(rng_));
    }
    return rng_.UniformInt(1, w_->config().num_items);
  }
  std::string RandomSubject() {
    const auto& s = TpcwWorkload::Subjects();
    return s[rng_.UniformInt(0, static_cast<int64_t>(s.size()) - 1)];
  }
  std::string T(const char* base) const { return w_->T(base); }

  // ---- Interactions ----

  void Home(ClientContext& ctx, std::function<void()> done) {
    ctx.Query("SELECT C_FNAME, C_LNAME FROM " + T("CUSTOMER") +
                  " WHERE C_ID = " + std::to_string(c_id_),
              [this, &ctx, done = std::move(done)](common::ResultSetPtr) {
                std::string in;
                for (int i = 0; i < 5; ++i) {
                  if (i > 0) in += ", ";
                  in += std::to_string(RandomItem());
                }
                ctx.Query("SELECT I_ID, I_TITLE FROM " + T("ITEM") +
                              " WHERE I_ID IN (" + in + ")",
                          [done](common::ResultSetPtr) { done(); });
              });
  }

  void NewProducts(ClientContext& ctx, std::function<void()> done) {
    ctx.Query("SELECT I_ID, I_TITLE, A_FNAME, A_LNAME FROM " + T("ITEM") +
                  ", " + T("AUTHOR") + " WHERE I_A_ID = A_ID AND I_SUBJECT = '" +
                  RandomSubject() +
                  "' ORDER BY I_PUB_DATE DESC, I_TITLE LIMIT 20",
              [done = std::move(done)](common::ResultSetPtr) { done(); });
  }

  void BestSellers(ClientContext& ctx, std::function<void()> done) {
    // The reference implementation's nested subquery is decomposed into
    // MAX(O_ID) (a parameterless ADQ) + the aggregation query, exposing
    // the correlation Apollo caches (see DESIGN.md).
    ctx.Query(
        "SELECT MAX(O_ID) AS MAX_O_ID FROM " + T("ORDERS"),
        [this, &ctx, done = std::move(done)](common::ResultSetPtr rs) {
          int64_t max_oid = (rs && !rs->empty() && rs->At(0, 0).is_int())
                                ? rs->At(0, 0).AsInt()
                                : 0;
          int64_t recent = std::max<int64_t>(0, max_oid - 3333);
          ctx.Query(
              "SELECT I_ID, I_TITLE, A_FNAME, A_LNAME, SUM(OL_QTY) AS "
              "QTY_SOLD FROM " + T("ITEM") + ", " + T("AUTHOR") + ", " +
                  T("ORDER_LINE") + " WHERE I_SUBJECT = '" +
                  RandomSubject() +
                  "' AND A_ID = I_A_ID AND OL_I_ID = I_ID AND OL_O_ID > " +
                  std::to_string(recent) +
                  " GROUP BY I_ID, I_TITLE, A_FNAME, A_LNAME"
                  " ORDER BY QTY_SOLD DESC LIMIT 50",
              [done](common::ResultSetPtr) { done(); });
        });
  }

  void ProductDetail(ClientContext& ctx, std::function<void()> done) {
    int64_t i_id = (viewed_item_ > 0 && rng_.Bernoulli(0.3)) ? viewed_item_
                                                             : RandomItem();
    ctx.Query(
        "SELECT I_ID, I_TITLE, I_A_ID, I_SUBJECT, I_COST, I_STOCK, "
        "I_PUB_DATE FROM " + T("ITEM") + " WHERE I_ID = " +
            std::to_string(i_id),
        [this, &ctx, i_id, done = std::move(done)](common::ResultSetPtr rs) {
          int64_t a_id = 1;
          if (rs && !rs->empty()) {
            int c = rs->ColumnIndex("I_A_ID");
            if (c >= 0 && rs->At(0, c).is_int()) a_id = rs->At(0, c).AsInt();
          }
          ctx.Query(
              "SELECT A_ID, A_FNAME, A_LNAME FROM " + T("AUTHOR") +
                  " WHERE A_ID = " + std::to_string(a_id),
              [this, &ctx, i_id, done](common::ResultSetPtr) {
                ctx.Query(
                    "SELECT I_RELATED1, I_RELATED2, I_RELATED3, I_RELATED4, "
                    "I_RELATED5 FROM " + T("ITEM") + " WHERE I_ID = " +
                        std::to_string(i_id),
                    [this, done](common::ResultSetPtr rel) {
                      if (rel && !rel->empty() && rel->At(0, 0).is_int()) {
                        viewed_item_ = rel->At(0, 0).AsInt();
                      }
                      done();
                    });
              });
        });
  }

  void SearchRequest(ClientContext& ctx, std::function<void()> done) {
    ctx.Query("SELECT COUNT(*) AS ITEM_COUNT FROM " + T("ITEM"),
              [done = std::move(done)](common::ResultSetPtr) { done(); });
  }

  void SearchResults(ClientContext& ctx, std::function<void()> done) {
    int kind = static_cast<int>(rng_.UniformInt(0, 2));
    std::string sql;
    if (kind == 0) {
      sql = "SELECT I_ID, I_TITLE, A_FNAME, A_LNAME FROM " + T("ITEM") +
            ", " + T("AUTHOR") + " WHERE I_A_ID = A_ID AND A_LNAME LIKE 'LN" +
            std::to_string(rng_.UniformInt(0, 499)) +
            "%' ORDER BY I_TITLE LIMIT 20";
    } else if (kind == 1) {
      sql = "SELECT I_ID, I_TITLE, A_FNAME, A_LNAME FROM " + T("ITEM") +
            ", " + T("AUTHOR") +
            " WHERE I_A_ID = A_ID AND I_TITLE LIKE 'TITLE" +
            std::to_string(rng_.UniformInt(1, 999)) +
            "%' ORDER BY I_TITLE LIMIT 20";
    } else {
      sql = "SELECT I_ID, I_TITLE, A_FNAME, A_LNAME FROM " + T("ITEM") +
            ", " + T("AUTHOR") + " WHERE I_A_ID = A_ID AND I_SUBJECT = '" +
            RandomSubject() + "' ORDER BY I_TITLE LIMIT 20";
    }
    ctx.Query(sql, [done = std::move(done)](common::ResultSetPtr) { done(); });
  }

  void EnsureCart(ClientContext& ctx, std::function<void()> then) {
    if (cart_id_ > 0) {
      then();
      return;
    }
    cart_id_ = 1000000 + static_cast<int64_t>(ctx.id()) * 100000 +
               (cart_seq_++);
    ctx.Query("INSERT INTO " + T("SHOPPING_CART") +
                  " (SC_ID, SC_TIME) VALUES (" + std::to_string(cart_id_) +
                  ", " + std::to_string(rng_.UniformInt(1, 100000)) + ")",
              [then = std::move(then)](common::ResultSetPtr) { then(); });
  }

  void ShoppingCart(ClientContext& ctx, std::function<void()> done) {
    EnsureCart(ctx, [this, &ctx, done = std::move(done)]() {
      int64_t i_id = RandomItem();
      cart_items_.push_back(i_id);
      ctx.Query(
          "INSERT INTO " + T("SHOPPING_CART_LINE") +
              " (SCL_SC_ID, SCL_I_ID, SCL_QTY) VALUES (" +
              std::to_string(cart_id_) + ", " + std::to_string(i_id) + ", " +
              std::to_string(rng_.UniformInt(1, 3)) + ")",
          [this, &ctx, done](common::ResultSetPtr) {
            ctx.Query("SELECT SCL_SC_ID, SCL_I_ID, SCL_QTY, I_TITLE, I_COST "
                      "FROM " + T("SHOPPING_CART_LINE") + ", " + T("ITEM") +
                          " WHERE SCL_I_ID = I_ID AND SCL_SC_ID = " +
                          std::to_string(cart_id_),
                      [done](common::ResultSetPtr) { done(); });
          });
    });
  }

  void CustomerRegistration(ClientContext& ctx, std::function<void()> done) {
    ctx.Query("SELECT C_ID, C_UNAME, C_PASSWD, C_FNAME, C_LNAME, C_ADDR_ID, "
              "C_DISCOUNT FROM " + T("CUSTOMER") + " WHERE C_UNAME = '" +
                  uname_ + "'",
              [done = std::move(done)](common::ResultSetPtr) { done(); });
  }

  void BuyRequest(ClientContext& ctx, std::function<void()> done) {
    EnsureCart(ctx, [this, &ctx, done = std::move(done)]() {
      ctx.Query(
          "SELECT C_ID, C_UNAME, C_FNAME, C_LNAME, C_ADDR_ID, C_DISCOUNT "
          "FROM " + T("CUSTOMER") + " WHERE C_UNAME = '" + uname_ + "'",
          [this, &ctx, done](common::ResultSetPtr rs) {
            int64_t addr_id = 1;
            if (rs && !rs->empty()) {
              int c = rs->ColumnIndex("C_ADDR_ID");
              if (c >= 0 && rs->At(0, c).is_int()) {
                addr_id = rs->At(0, c).AsInt();
              }
            }
            ship_addr_id_ = addr_id;
            ctx.Query(
                "SELECT ADDR_ID, ADDR_STREET1, ADDR_CITY, ADDR_CO_ID FROM " +
                    T("ADDRESS") + " WHERE ADDR_ID = " +
                    std::to_string(addr_id),
                [this, &ctx, done](common::ResultSetPtr ars) {
                  int64_t co_id = 1;
                  if (ars && !ars->empty()) {
                    int c = ars->ColumnIndex("ADDR_CO_ID");
                    if (c >= 0 && ars->At(0, c).is_int()) {
                      co_id = ars->At(0, c).AsInt();
                    }
                  }
                  ctx.Query(
                      "SELECT CO_ID, CO_NAME FROM " + T("COUNTRY") +
                          " WHERE CO_ID = " + std::to_string(co_id),
                      [this, &ctx, done](common::ResultSetPtr) {
                        ctx.Query(
                            "SELECT SCL_SC_ID, SCL_I_ID, SCL_QTY, I_TITLE, "
                            "I_COST FROM " + T("SHOPPING_CART_LINE") + ", " +
                                T("ITEM") +
                                " WHERE SCL_I_ID = I_ID AND SCL_SC_ID = " +
                                std::to_string(cart_id_),
                            [done](common::ResultSetPtr) { done(); });
                      });
                });
          });
    });
  }

  void BuyConfirm(ClientContext& ctx, std::function<void()> done) {
    if (cart_id_ <= 0 || cart_items_.empty()) {
      // Nothing to buy; degrade to a cart view.
      return ShoppingCart(ctx, std::move(done));
    }
    int64_t o_id = w_->NextOrderId();
    double total = 25.0 * static_cast<double>(cart_items_.size());
    ctx.Query(
        "INSERT INTO " + T("ORDERS") +
            " (O_ID, O_C_ID, O_DATE, O_TOTAL, O_SHIP_ADDR_ID, O_STATUS) "
            "VALUES (" +
            std::to_string(o_id) + ", " + std::to_string(c_id_) + ", " +
            std::to_string(rng_.UniformInt(3000, 4000)) + ", " +
            std::to_string(total) + ", " + std::to_string(ship_addr_id_) +
            ", 'PENDING')",
        [this, &ctx, o_id, total, done = std::move(done)](
            common::ResultSetPtr) {
          InsertOrderLines(ctx, o_id, 0, [this, &ctx, o_id, total, done]() {
            ctx.Query(
                "INSERT INTO " + T("CC_XACTS") +
                    " (CX_O_ID, CX_TYPE, CX_AMT, CX_CO_ID) VALUES (" +
                    std::to_string(o_id) + ", 'VISA', " +
                    std::to_string(total) + ", " +
                    std::to_string(rng_.UniformInt(1, 92)) + ")",
                [this, &ctx, done](common::ResultSetPtr) {
                  ctx.Query(
                      "DELETE FROM " + T("SHOPPING_CART_LINE") +
                          " WHERE SCL_SC_ID = " + std::to_string(cart_id_),
                      [this, done](common::ResultSetPtr) {
                        cart_id_ = 0;
                        cart_items_.clear();
                        done();
                      });
                });
          });
        });
  }

  void InsertOrderLines(ClientContext& ctx, int64_t o_id, size_t idx,
                        std::function<void()> then) {
    if (idx >= cart_items_.size()) {
      then();
      return;
    }
    int64_t i_id = cart_items_[idx];
    int64_t qty = rng_.UniformInt(1, 3);
    ctx.Query(
        "INSERT INTO " + T("ORDER_LINE") +
            " (OL_ID, OL_O_ID, OL_I_ID, OL_QTY, OL_DISCOUNT) VALUES (" +
            std::to_string(o_id * 100 + static_cast<int64_t>(idx)) + ", " +
            std::to_string(o_id) + ", " + std::to_string(i_id) + ", " +
            std::to_string(qty) + ", 0.0)",
        [this, &ctx, o_id, i_id, qty, idx, then = std::move(then)](
            common::ResultSetPtr) {
          ctx.Query("UPDATE " + T("ITEM") + " SET I_STOCK = I_STOCK - " +
                        std::to_string(qty) + " WHERE I_ID = " +
                        std::to_string(i_id),
                    [this, &ctx, o_id, idx, then](common::ResultSetPtr) {
                      InsertOrderLines(ctx, o_id, idx + 1, then);
                    });
        });
  }

  void OrderInquiry(ClientContext& ctx, std::function<void()> done) {
    ctx.Query("SELECT C_UNAME FROM " + T("CUSTOMER") + " WHERE C_ID = " +
                  std::to_string(c_id_),
              [done = std::move(done)](common::ResultSetPtr) { done(); });
  }

  /// The paper's Figure 2 chain: login -> most recent order -> order
  /// header -> order lines (a depth-3 FDQ pipeline).
  void OrderDisplay(ClientContext& ctx, std::function<void()> done) {
    ctx.Query(
        "SELECT C_ID FROM " + T("CUSTOMER") + " WHERE C_UNAME = '" + uname_ +
            "' AND C_PASSWD = '" + passwd_ + "'",
        [this, &ctx, done = std::move(done)](common::ResultSetPtr rs) {
          if (!rs || rs->empty()) return done();
          int64_t cid = rs->At(0, 0).AsInt();
          ctx.Query(
              "SELECT MAX(O_ID) AS O_ID FROM " + T("ORDERS") +
                  " WHERE O_C_ID = " + std::to_string(cid),
              [this, &ctx, done](common::ResultSetPtr mrs) {
                if (!mrs || mrs->empty() || !mrs->At(0, 0).is_int()) {
                  return done();
                }
                int64_t o_id = mrs->At(0, 0).AsInt();
                ctx.Query(
                    "SELECT O_ID, O_C_ID, O_DATE, O_TOTAL, O_SHIP_ADDR_ID, "
                    "O_STATUS FROM " + T("ORDERS") + " WHERE O_ID = " +
                        std::to_string(o_id),
                    [this, &ctx, o_id, done](common::ResultSetPtr) {
                      ctx.Query(
                          "SELECT OL_I_ID, OL_QTY, OL_DISCOUNT, I_TITLE, "
                          "I_COST FROM " + T("ORDER_LINE") + ", " +
                              T("ITEM") +
                              " WHERE OL_I_ID = I_ID AND OL_O_ID = " +
                              std::to_string(o_id),
                          [done](common::ResultSetPtr) { done(); });
                    });
              });
        });
  }

  void AdminRequest(ClientContext& ctx, std::function<void()> done) {
    admin_item_ = RandomItem();
    ctx.Query("SELECT I_ID, I_TITLE, I_COST, I_STOCK FROM " + T("ITEM") +
                  " WHERE I_ID = " + std::to_string(admin_item_),
              [done = std::move(done)](common::ResultSetPtr) { done(); });
  }

  void AdminConfirm(ClientContext& ctx, std::function<void()> done) {
    int64_t item = admin_item_ > 0 ? admin_item_ : RandomItem();
    ctx.Query("UPDATE " + T("ITEM") + " SET I_COST = " +
                  std::to_string(1.0 + rng_.UniformInt(0, 9999) / 100.0) +
                  ", I_PUB_DATE = " + std::to_string(rng_.UniformInt(1, 3650)) +
                  " WHERE I_ID = " + std::to_string(item),
              [done = std::move(done)](common::ResultSetPtr) { done(); });
  }

  TpcwWorkload* w_;
  util::Rng rng_;
  std::vector<double> mix_;
  std::unique_ptr<util::Zipf> item_zipf_;
  TpcwInteraction last_ = TpcwInteraction::kHome;

  int64_t c_id_ = 1;
  std::string uname_;
  std::string passwd_;
  int64_t cart_id_ = 0;
  int64_t cart_seq_ = 0;
  std::vector<int64_t> cart_items_;
  int64_t viewed_item_ = 0;
  int64_t admin_item_ = 0;
  int64_t ship_addr_id_ = 1;
};

}  // namespace

std::unique_ptr<WorkloadClient> TpcwWorkload::MakeClient(int index,
                                                         uint64_t seed) {
  return std::make_unique<TpcwClient>(this, index, seed);
}

}  // namespace apollo::workload
