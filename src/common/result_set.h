// Row and ResultSet: the tabular unit flowing between the database engine,
// the cache, and the Apollo prediction framework.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/value.h"

namespace apollo::common {

/// A single tuple.
using Row = std::vector<Value>;

/// An immutable-after-construction query result: column names plus rows.
///
/// Result sets also carry bookkeeping the simulator and framework use:
/// `rows_examined` (execution-cost model input) and `affected_rows`
/// (writes). Result sets are shared via shared_ptr so the cache, waiting
/// subscribers and predictive pipelines never copy payloads.
class ResultSet {
 public:
  ResultSet() = default;
  explicit ResultSet(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return columns_.size(); }
  bool empty() const { return rows_.empty(); }

  void AddRow(Row row) { rows_.push_back(std::move(row)); }
  void Reserve(size_t n) { rows_.reserve(n); }

  /// Index of a named column, or -1. Matches case-insensitively and also
  /// matches a qualified name's suffix ("C_ID" matches "CUSTOMER.C_ID").
  int ColumnIndex(const std::string& name) const;

  /// Cell accessor; requires valid indices.
  const Value& At(size_t row, size_t col) const { return rows_[row][col]; }

  /// First cell of the first row, or NULL if empty. Convenience for
  /// single-value lookups (MAX(...), COUNT(*), id lookups).
  Value ScalarOrNull() const {
    if (rows_.empty() || rows_[0].empty()) return Value::Null();
    return rows_[0][0];
  }

  /// Rows examined by the executor while producing this result
  /// (cost-model input; includes scanned rows that did not match).
  uint64_t rows_examined() const { return rows_examined_; }
  void set_rows_examined(uint64_t n) { rows_examined_ = n; }

  /// Rows changed by a write statement.
  uint64_t affected_rows() const { return affected_rows_; }
  void set_affected_rows(uint64_t n) { affected_rows_ = n; }

  /// Approximate memory footprint for cache budgeting.
  size_t ByteSize() const;

  /// Renders a small ASCII table (debugging / examples).
  std::string ToString(size_t max_rows = 20) const;

 private:
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
  uint64_t rows_examined_ = 0;
  uint64_t affected_rows_ = 0;
};

using ResultSetPtr = std::shared_ptr<const ResultSet>;

}  // namespace apollo::common
