// Value: the dynamically-typed scalar used throughout the engine.
//
// Columns, query parameters and result cells are all Values. The engine
// supports the types the TPC-W / TPC-C schemas need: 64-bit integers,
// doubles, strings, and NULL.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "util/hash.h"

namespace apollo::common {

enum class ValueType : uint8_t {
  kNull = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
};

std::string_view ValueTypeName(ValueType t);

/// A scalar value: NULL, INT (int64), DOUBLE, or STRING.
///
/// Comparison follows SQL-ish semantics with a total order for sorting:
/// NULL sorts first; numeric types compare numerically across INT/DOUBLE;
/// strings compare lexicographically. Cross-type (numeric vs string)
/// comparisons fall back to type ordering.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value Str(std::string v) { return Value(std::move(v)); }

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_int() const { return type() == ValueType::kInt; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_numeric() const { return is_int() || is_double(); }

  /// Requires is_int().
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  /// Requires is_double().
  double AsDoubleRaw() const { return std::get<double>(data_); }
  /// Requires is_string().
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Numeric coercion: INT and DOUBLE convert; others yield 0.0.
  double ToDouble() const;

  /// Total order over values; see class comment.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Stable 64-bit hash; equal values (incl. INT 3 == DOUBLE 3.0) hash equal.
  uint64_t Hash() const;

  /// SQL literal rendering: NULL, 42, 3.5, 'text' (quotes escaped).
  std::string ToSqlLiteral() const;

  /// Display rendering without quotes (for result tables).
  std::string ToDisplayString() const;

  /// Approximate in-memory footprint in bytes (for cache budgeting).
  size_t ByteSize() const {
    return sizeof(Value) + (is_string() ? AsString().size() : 0);
  }

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

struct ValueHash {
  size_t operator()(const Value& v) const {
    return static_cast<size_t>(v.Hash());
  }
};

}  // namespace apollo::common
