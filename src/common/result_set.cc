#include "common/result_set.h"

#include "util/string_util.h"

namespace apollo::common {

int ResultSet::ColumnIndex(const std::string& name) const {
  std::string want = util::ToUpperAscii(name);
  for (size_t i = 0; i < columns_.size(); ++i) {
    std::string have = util::ToUpperAscii(columns_[i]);
    if (have == want) return static_cast<int>(i);
  }
  // Suffix match on qualified names, both directions.
  for (size_t i = 0; i < columns_.size(); ++i) {
    std::string have = util::ToUpperAscii(columns_[i]);
    size_t dot = have.rfind('.');
    if (dot != std::string::npos && have.substr(dot + 1) == want) {
      return static_cast<int>(i);
    }
    size_t wdot = want.rfind('.');
    if (wdot != std::string::npos && want.substr(wdot + 1) == have) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

size_t ResultSet::ByteSize() const {
  size_t total = sizeof(ResultSet);
  for (const auto& c : columns_) total += c.size() + sizeof(std::string);
  for (const auto& row : rows_) {
    total += sizeof(Row);
    for (const auto& v : row) total += v.ByteSize();
  }
  return total;
}

std::string ResultSet::ToString(size_t max_rows) const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += " | ";
    out += columns_[i];
  }
  out += "\n";
  size_t shown = 0;
  for (const auto& row : rows_) {
    if (shown++ >= max_rows) {
      out += "... (" + std::to_string(rows_.size() - max_rows) +
             " more rows)\n";
      break;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += row[i].ToDisplayString();
    }
    out += "\n";
  }
  return out;
}

}  // namespace apollo::common
