#include "common/value.h"

#include <cmath>
#include <cstdio>

namespace apollo::common {

std::string_view ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

double Value::ToDouble() const {
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(AsInt());
    case ValueType::kDouble:
      return AsDoubleRaw();
    default:
      return 0.0;
  }
}

int Value::Compare(const Value& other) const {
  // NULL sorts before everything.
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  if (is_numeric() && other.is_numeric()) {
    // Compare INTs exactly when both are INT.
    if (is_int() && other.is_int()) {
      int64_t a = AsInt();
      int64_t b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = ToDouble();
    double b = other.ToDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (is_string() && other.is_string()) {
    return AsString().compare(other.AsString());
  }
  // Cross-type: order by type id to keep sorting total.
  auto ta = static_cast<int>(type());
  auto tb = static_cast<int>(other.type());
  return ta < tb ? -1 : (ta > tb ? 1 : 0);
}

uint64_t Value::Hash() const {
  util::Hasher64 h;
  switch (type()) {
    case ValueType::kNull:
      h.Update(uint64_t{0xdeadbeef});
      break;
    case ValueType::kInt:
      h.Update(uint64_t{1});
      h.Update(static_cast<uint64_t>(AsInt()));
      break;
    case ValueType::kDouble: {
      double d = AsDoubleRaw();
      // Hash integral doubles like their INT counterpart so that
      // INT 3 == DOUBLE 3.0 implies equal hashes.
      if (d == std::floor(d) && std::abs(d) < 9.2e18) {
        h.Update(uint64_t{1});
        h.Update(static_cast<uint64_t>(static_cast<int64_t>(d)));
      } else {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        __builtin_memcpy(&bits, &d, sizeof(bits));
        h.Update(uint64_t{2});
        h.Update(bits);
      }
      break;
    }
    case ValueType::kString:
      h.Update(uint64_t{3});
      h.Update(AsString());
      break;
  }
  return h.Finish();
}

std::string Value::ToSqlLiteral() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", AsDoubleRaw());
      return buf;
    }
    case ValueType::kString: {
      std::string out = "'";
      for (char c : AsString()) {
        if (c == '\'') out += "''";
        else out += c;
      }
      out += "'";
      return out;
    }
  }
  return "NULL";
}

std::string Value::ToDisplayString() const {
  if (is_string()) return AsString();
  return ToSqlLiteral();
}

}  // namespace apollo::common
