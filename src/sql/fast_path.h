// Lex-level template fast path (parse-once admission, DESIGN.md Section 10).
//
// One pass over the raw SQL text strips literals in place, producing (a) a
// normalized "lex key" — the token stream with every literal replaced by
// '?' — and (b) the literal values in token order. The lex key identifies a
// previously full-parsed template in the TemplateCache, so steady-state
// admission never builds an AST.
//
// Correctness contract: whenever LexTemplatize succeeds, the extracted
// parameter vector is bit-identical to what the full parse + stripped
// canonical print would collect, and two queries with equal lex keys always
// map to the same template fingerprint. The scanner guarantees this by
// mirroring the tokenizer's normalization exactly and by *bailing out*
// (returning false) on every construct where literal extraction is
// ambiguous at the lexical level — most notably a '-' whose unary/binary
// reading depends on parse context. Bailing is always safe: the caller
// falls back to the full parse, which is also the first-sight path that
// seeds the cache.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/value.h"

namespace apollo::sql {

/// Output of one fast literal-stripping scan.
struct LexTemplateResult {
  /// Normalized token stream with literals stripped: tokens joined by a
  /// single space, identifiers uppercased, '!=' rewritten to '<>', ';'
  /// dropped — i.e. exactly the tokenizer's normalization. Used only as a
  /// cache-lookup key, never as SQL text.
  std::string key;
  /// Stripped literal values in token order (== the full parse's
  /// placeholder/print order for every query the scanner accepts).
  std::vector<common::Value> params;
};

/// Scans `sql` in one pass. Returns true and fills `out` when the query is
/// unambiguous at the lexical level; returns false (bail to full parse)
/// otherwise. Bails on: tokenizer errors, statements that do not start with
/// SELECT/INSERT/UPDATE/DELETE, pre-existing '?'/'@name' placeholders, and
/// any '-' before a numeric literal whose unary/binary reading the lexer
/// cannot decide (see MinusContext in the implementation).
bool LexTemplatize(std::string_view sql, LexTemplateResult* out);

}  // namespace apollo::sql
