// SQL tokenizer.
//
// Produces a token stream for the recursive-descent parser. Keywords are
// recognized case-insensitively; string literals use single quotes with ''
// as the escape; @name and ? both denote parameter placeholders.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace apollo::sql {

enum class TokenType {
  kIdentifier,   // table/column/function names (normalized to upper)
  kInteger,      // 42
  kFloat,        // 3.5
  kString,       // 'abc'
  kOperator,     // = <> != < <= > >= + - * / .
  kComma,
  kLeftParen,
  kRightParen,
  kPlaceholder,  // ? or @name
  kEnd,
};

struct Token {
  TokenType type;
  std::string text;    // normalized: identifiers uppercased, strings unescaped
  size_t position;     // byte offset in the source, for error messages

  bool Is(TokenType t) const { return type == t; }
  /// True for an identifier token equal to `kw` (already uppercase).
  bool IsKeyword(const char* kw) const {
    return type == TokenType::kIdentifier && text == kw;
  }
  bool IsOp(const char* op) const {
    return type == TokenType::kOperator && text == op;
  }
};

/// Tokenizes `sql`. On success the vector ends with a kEnd token.
util::Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace apollo::sql
