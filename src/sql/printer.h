// AST printer: renders statements back to canonical SQL text.
//
// Canonical form (single spaces, uppercased keywords/identifiers) means two
// queries that differ only in whitespace or keyword case print identically —
// which makes the printed form a sound input for template fingerprinting.
#pragma once

#include <string>

#include "sql/ast.h"

namespace apollo::sql {

struct PrintOptions {
  /// Replace every literal with '?' (used for template fingerprints).
  bool strip_literals = false;
  /// If set, literals are appended here in print order (i.e. in the order
  /// their '?' placeholders appear in the stripped text).
  std::vector<common::Value>* collect_literals = nullptr;
};

std::string PrintExpr(const Expr& expr, const PrintOptions& opts = {});
std::string PrintStatement(const Statement& stmt,
                           const PrintOptions& opts = {});

}  // namespace apollo::sql
