// Query templating (paper Sections 2.1 and 3).
//
// Two queries share a template when their statement text is identical after
// every constant is replaced by a '?' placeholder. Apollo identifies
// templates by a 64-bit hash of the constant-independent canonical parse
// tree rendering; parameters are the stripped constants in placeholder
// order.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/value.h"
#include "sql/ast.h"
#include "util/result.h"

namespace apollo::sql {

/// The template-level view of one parsed query.
struct TemplateInfo {
  /// 64-bit hash of `template_text` — the template identifier used
  /// throughout the framework.
  uint64_t fingerprint = 0;
  /// Canonical text with constants replaced by '?'.
  std::string template_text;
  /// Canonical text with constants in place; used as the cache key
  /// (whitespace/case-normalized so equivalent queries share entries).
  std::string canonical_text;
  /// Constants extracted from the query, in placeholder order.
  std::vector<common::Value> params;
  /// Number of '?' positions in template_text (== params.size() for fully
  /// bound client queries; larger if the input already had placeholders).
  int num_placeholders = 0;
  bool read_only = false;
  std::vector<std::string> tables_read;
  std::vector<std::string> tables_written;
};

/// Parses and templatizes a query in one pass.
util::Result<TemplateInfo> Templatize(const std::string& sql);

/// Templatizes an already-parsed statement.
TemplateInfo TemplatizeStatement(const Statement& stmt);

/// Rebuilds a concrete query from a template by substituting `params`
/// (rendered as SQL literals) for the '?' placeholders, left to right.
/// Fails if the count does not match `num_placeholders` of the template.
util::Result<std::string> Instantiate(const std::string& template_text,
                                      const std::vector<common::Value>& params);

/// Instantiate variant that builds into `out` (cleared first, reserved to
/// the expected size) so hot paths can reuse one buffer across calls.
util::Status InstantiateTo(const std::string& template_text,
                           const std::vector<common::Value>& params,
                           std::string* out);

}  // namespace apollo::sql
