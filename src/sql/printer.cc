#include "sql/printer.h"

namespace apollo::sql {

namespace {

void PrintExprTo(const Expr& e, const PrintOptions& opts, std::string& out);

void PrintChild(const Expr& e, size_t i, const PrintOptions& opts,
                std::string& out) {
  PrintExprTo(*e.children[i], opts, out);
}

bool NeedsParens(const Expr& e) {
  return e.kind == ExprKind::kBinary &&
         (e.op == BinOp::kAnd || e.op == BinOp::kOr);
}

void PrintExprTo(const Expr& e, const PrintOptions& opts, std::string& out) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      if (opts.collect_literals != nullptr) {
        opts.collect_literals->push_back(e.literal);
      }
      out += opts.strip_literals ? "?" : e.literal.ToSqlLiteral();
      break;
    case ExprKind::kPlaceholder:
      out += "?";
      break;
    case ExprKind::kColumnRef:
      if (!e.table.empty()) {
        out += e.table;
        out += ".";
      }
      out += e.column;
      break;
    case ExprKind::kStar:
      if (!e.table.empty()) {
        out += e.table;
        out += ".";
      }
      out += "*";
      break;
    case ExprKind::kUnaryMinus:
      out += "-";
      PrintChild(e, 0, opts, out);
      break;
    case ExprKind::kNot:
      out += "NOT (";
      PrintChild(e, 0, opts, out);
      out += ")";
      break;
    case ExprKind::kBinary: {
      bool parens = e.op == BinOp::kOr;
      if (parens) out += "(";
      bool lp = NeedsParens(*e.children[0]) && e.op != BinOp::kAnd &&
                e.op != BinOp::kOr;
      if (lp) out += "(";
      PrintChild(e, 0, opts, out);
      if (lp) out += ")";
      out += " ";
      if (e.negated && e.op == BinOp::kLike) out += "NOT ";
      out += BinOpName(e.op);
      out += " ";
      bool rp = NeedsParens(*e.children[1]) && e.op != BinOp::kAnd &&
                e.op != BinOp::kOr;
      if (rp) out += "(";
      PrintChild(e, 1, opts, out);
      if (rp) out += ")";
      if (parens) out += ")";
      break;
    }
    case ExprKind::kFuncCall:
      out += e.func;
      out += "(";
      if (e.distinct) out += "DISTINCT ";
      PrintChild(e, 0, opts, out);
      out += ")";
      break;
    case ExprKind::kInList:
      PrintChild(e, 0, opts, out);
      if (e.negated) out += " NOT";
      out += " IN (";
      for (size_t i = 1; i < e.children.size(); ++i) {
        if (i > 1) out += ", ";
        PrintChild(e, i, opts, out);
      }
      out += ")";
      break;
    case ExprKind::kBetween:
      PrintChild(e, 0, opts, out);
      if (e.negated) out += " NOT";
      out += " BETWEEN ";
      PrintChild(e, 1, opts, out);
      out += " AND ";
      PrintChild(e, 2, opts, out);
      break;
    case ExprKind::kIsNull:
      PrintChild(e, 0, opts, out);
      out += e.negated ? " IS NOT NULL" : " IS NULL";
      break;
  }
}

void PrintTableRef(const TableRef& tr, std::string& out) {
  out += tr.table;
  if (!tr.alias.empty()) {
    out += " ";
    out += tr.alias;
  }
}

}  // namespace

std::string PrintExpr(const Expr& expr, const PrintOptions& opts) {
  std::string out;
  PrintExprTo(expr, opts, out);
  return out;
}

std::string PrintStatement(const Statement& stmt, const PrintOptions& opts) {
  std::string out;
  switch (stmt.kind) {
    case StatementKind::kSelect: {
      const auto& s = *stmt.select;
      out += "SELECT ";
      if (s.distinct) out += "DISTINCT ";
      for (size_t i = 0; i < s.items.size(); ++i) {
        if (i > 0) out += ", ";
        PrintExprTo(*s.items[i].expr, opts, out);
        if (!s.items[i].alias.empty()) {
          out += " AS ";
          out += s.items[i].alias;
        }
      }
      out += " FROM ";
      for (size_t i = 0; i < s.tables.size(); ++i) {
        if (i > 0) out += ", ";
        PrintTableRef(s.tables[i], out);
      }
      for (const auto& j : s.joins) {
        out += " JOIN ";
        PrintTableRef(j.table, out);
        out += " ON ";
        PrintExprTo(*j.on, opts, out);
      }
      if (s.where) {
        out += " WHERE ";
        PrintExprTo(*s.where, opts, out);
      }
      if (!s.group_by.empty()) {
        out += " GROUP BY ";
        for (size_t i = 0; i < s.group_by.size(); ++i) {
          if (i > 0) out += ", ";
          PrintExprTo(*s.group_by[i], opts, out);
        }
      }
      if (!s.order_by.empty()) {
        out += " ORDER BY ";
        for (size_t i = 0; i < s.order_by.size(); ++i) {
          if (i > 0) out += ", ";
          PrintExprTo(*s.order_by[i].expr, opts, out);
          if (s.order_by[i].desc) out += " DESC";
        }
      }
      if (s.limit >= 0) {
        out += " LIMIT ";
        out += std::to_string(s.limit);
      }
      break;
    }
    case StatementKind::kInsert: {
      const auto& s = *stmt.insert;
      out += "INSERT INTO ";
      out += s.table;
      if (!s.columns.empty()) {
        out += " (";
        for (size_t i = 0; i < s.columns.size(); ++i) {
          if (i > 0) out += ", ";
          out += s.columns[i];
        }
        out += ")";
      }
      out += " VALUES ";
      for (size_t r = 0; r < s.rows.size(); ++r) {
        if (r > 0) out += ", ";
        out += "(";
        for (size_t i = 0; i < s.rows[r].size(); ++i) {
          if (i > 0) out += ", ";
          PrintExprTo(*s.rows[r][i], opts, out);
        }
        out += ")";
      }
      break;
    }
    case StatementKind::kUpdate: {
      const auto& s = *stmt.update;
      out += "UPDATE ";
      out += s.table;
      out += " SET ";
      for (size_t i = 0; i < s.assignments.size(); ++i) {
        if (i > 0) out += ", ";
        out += s.assignments[i].first;
        out += " = ";
        PrintExprTo(*s.assignments[i].second, opts, out);
      }
      if (s.where) {
        out += " WHERE ";
        PrintExprTo(*s.where, opts, out);
      }
      break;
    }
    case StatementKind::kDelete: {
      const auto& s = *stmt.del;
      out += "DELETE FROM ";
      out += s.table;
      if (s.where) {
        out += " WHERE ";
        PrintExprTo(*s.where, opts, out);
      }
      break;
    }
  }
  return out;
}

}  // namespace apollo::sql
