// Abstract syntax tree for the Apollo SQL dialect.
//
// The dialect covers what the TPC-W / TPC-C workloads and the Apollo
// framework need: single-level SELECT with inner joins (explicit JOIN..ON or
// comma-join + WHERE), aggregates with GROUP BY, ORDER BY, LIMIT, and
// single-table INSERT / UPDATE / DELETE. Subqueries are intentionally out of
// scope (the workload generators decompose them into query sequences, which
// is precisely the correlated-query pattern Apollo learns).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/value.h"

namespace apollo::sql {

enum class ExprKind {
  kLiteral,      // 42, 'abc', 3.5, NULL
  kColumnRef,    // [table.]column
  kStar,         // * (select item or COUNT(*))
  kBinary,       // a op b
  kUnaryMinus,   // -a
  kNot,          // NOT a
  kFuncCall,     // COUNT/MIN/MAX/SUM/AVG(expr)
  kInList,       // a IN (v1, v2, ...)
  kBetween,      // a BETWEEN lo AND hi
  kIsNull,       // a IS [NOT] NULL
  kPlaceholder,  // ? or @name (unbound parameter)
};

enum class BinOp {
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kAdd, kSub, kMul, kDiv,
  kLike,
};

std::string_view BinOpName(BinOp op);

/// A single flexible expression node (kind-discriminated).
struct Expr {
  ExprKind kind;

  // kBinary
  BinOp op = BinOp::kEq;
  // kLiteral
  common::Value literal;
  // kColumnRef: qualifier may be empty
  std::string table;
  std::string column;
  // kFuncCall: name uppercased; distinct for COUNT(DISTINCT x)
  std::string func;
  bool distinct = false;
  // kIsNull / kInList / kBetween / kLike negation (IS NOT NULL, NOT IN, ...)
  bool negated = false;
  // kPlaceholder: ordinal position within the statement (0-based)
  int placeholder_index = -1;

  std::vector<std::unique_ptr<Expr>> children;

  std::unique_ptr<Expr> Clone() const;

  static std::unique_ptr<Expr> MakeLiteral(common::Value v);
  static std::unique_ptr<Expr> MakeColumn(std::string table,
                                          std::string column);
  static std::unique_ptr<Expr> MakeBinary(BinOp op, std::unique_ptr<Expr> l,
                                          std::unique_ptr<Expr> r);
};

struct TableRef {
  std::string table;  // uppercased
  std::string alias;  // uppercased; empty if none
  const std::string& EffectiveName() const {
    return alias.empty() ? table : alias;
  }
};

struct JoinClause {
  TableRef table;
  std::unique_ptr<Expr> on;  // inner-join condition
};

struct SelectItem {
  std::unique_ptr<Expr> expr;
  std::string alias;  // uppercased; empty if none
};

struct OrderItem {
  std::unique_ptr<Expr> expr;
  bool desc = false;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> tables;   // FROM list (comma-joined)
  std::vector<JoinClause> joins;  // explicit JOIN ... ON ...
  std::unique_ptr<Expr> where;
  std::vector<std::unique_ptr<Expr>> group_by;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  // -1 = no limit
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  // empty = schema order
  std::vector<std::vector<std::unique_ptr<Expr>>> rows;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, std::unique_ptr<Expr>>> assignments;
  std::unique_ptr<Expr> where;
};

struct DeleteStmt {
  std::string table;
  std::unique_ptr<Expr> where;
};

enum class StatementKind { kSelect, kInsert, kUpdate, kDelete };

/// A parsed SQL statement. Exactly one member matching `kind` is set.
struct Statement {
  StatementKind kind;
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<DeleteStmt> del;

  bool IsReadOnly() const { return kind == StatementKind::kSelect; }

  /// Uppercased names of tables this statement reads.
  std::vector<std::string> TablesRead() const;
  /// Uppercased names of tables this statement writes (empty for SELECT).
  std::vector<std::string> TablesWritten() const;
  /// Union of reads and writes.
  std::vector<std::string> TablesTouched() const;

  std::unique_ptr<Statement> Clone() const;
};

/// Walks all expressions in a statement, invoking `fn` on each node
/// (pre-order).
void VisitExprs(const Statement& stmt,
                const std::function<void(const Expr&)>& fn);

/// Mutable variant of VisitExprs.
void VisitExprsMut(Statement& stmt, const std::function<void(Expr&)>& fn);

}  // namespace apollo::sql
