// Concurrent template cache (parse-once admission, DESIGN.md Section 10).
//
// Memoizes one immutable CachedTemplate per template fingerprint: the
// TemplateInfo produced by the full parse plus the parameterized Statement
// re-parsed from the template text. Admission goes through Admit(): the lex
// fast path (fast_path.h) resolves repeat queries to their cached template
// without building an AST; first sights and lexically ambiguous queries fall
// back to the full parse and seed the cache.
//
// Invariants:
//  - CachedTemplate instances are immutable after insertion and published as
//    shared_ptr<const CachedTemplate>; readers may hold them indefinitely.
//  - Equal lex keys imply equal fingerprints (enforced by construction: a
//    lex key is only mapped after a successful full parse of a query with
//    that key, and the scanner's normalization mirrors the tokenizer's).
//  - `statement` is parsed from template_text, so its placeholder indices
//    are in template print order == the params vector order.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/value.h"
#include "sql/ast.h"
#include "sql/fast_path.h"
#include "sql/template.h"
#include "util/result.h"

namespace apollo::sql {

/// One immutable, shareable template: the constant-independent TemplateInfo
/// plus the parameterized statement used by the prepared execution path.
struct CachedTemplate {
  /// Template-level metadata. `params` and `canonical_text` are cleared —
  /// they are per-query, not per-template (see AdmittedQuery).
  TemplateInfo info;
  /// Statement parsed from info.template_text, every literal a placeholder
  /// whose index is the position in a query's params vector. Null when the
  /// template text does not round-trip through the parser; such templates
  /// simply never use the prepared path.
  std::unique_ptr<const Statement> statement;
};

using CachedTemplatePtr = std::shared_ptr<const CachedTemplate>;

/// One admitted query: its (shared, immutable) template plus the per-query
/// state — bound parameters and the canonical cache-key text.
struct AdmittedQuery {
  CachedTemplatePtr tpl;
  std::vector<common::Value> params;
  /// Canonical text with constants in place (the KvCache key / trace text).
  std::string canonical_text;
  /// True when the lex fast path resolved this query (no AST was built).
  bool via_fast_path = false;

  uint64_t fingerprint() const { return tpl->info.fingerprint; }
  const std::string& template_text() const { return tpl->info.template_text; }
  bool read_only() const { return tpl->info.read_only; }
  int num_placeholders() const { return tpl->info.num_placeholders; }
  const std::vector<std::string>& tables_read() const {
    return tpl->info.tables_read;
  }
  const std::vector<std::string>& tables_written() const {
    return tpl->info.tables_written;
  }
  /// True when this query can run through the prepared execution path:
  /// the template round-tripped through the parser and every placeholder
  /// has a bound value.
  bool preparable() const {
    return tpl->statement != nullptr &&
           static_cast<int>(params.size()) == tpl->info.num_placeholders;
  }
};

/// Thread-safe fingerprint-keyed template cache. Entries are interned once
/// and never evicted (the template universe is the workload's statement set,
/// bounded and small — same lifetime policy as core::TemplateRegistry).
class TemplateCache {
 public:
  /// Admits one query: lex fast path when possible, full parse otherwise.
  /// Returns the same fingerprint/params/canonical text the full
  /// parse+print route would produce, or the parse error.
  util::Result<AdmittedQuery> Admit(const std::string& sql);

  /// Returns the cached template for `fingerprint`, or nullptr.
  CachedTemplatePtr GetByFingerprint(uint64_t fingerprint) const;

  /// Interns the template of an already-parsed statement (no lex-key
  /// mapping). Used by callers that parsed for other reasons.
  CachedTemplatePtr Intern(const TemplateInfo& info);

  uint64_t fast_hits() const {
    return fast_hits_.load(std::memory_order_relaxed);
  }
  uint64_t fallbacks() const {
    return fallbacks_.load(std::memory_order_relaxed);
  }
  size_t size() const;

 private:
  /// Inserts (or finds) the entry for `info`, parsing the template text into
  /// the prepared statement on first insertion. Caller must hold `mu_`.
  CachedTemplatePtr InternLocked(TemplateInfo&& info);

  mutable std::shared_mutex mu_;
  std::unordered_map<uint64_t, CachedTemplatePtr> by_fingerprint_;
  std::unordered_map<std::string, CachedTemplatePtr> by_lex_key_;
  std::atomic<uint64_t> fast_hits_{0};
  std::atomic<uint64_t> fallbacks_{0};
};

}  // namespace apollo::sql
