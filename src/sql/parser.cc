#include "sql/parser.h"

#include <utility>

#include "sql/token.h"

namespace apollo::sql {

namespace {

using util::Result;
using util::Status;

/// Parser over a token stream. Placeholders are numbered in token order.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<Statement>> ParseStatement() {
    auto stmt = std::make_unique<Statement>();
    const Token& t = Peek();
    if (t.IsKeyword("SELECT")) {
      stmt->kind = StatementKind::kSelect;
      auto sel = ParseSelect();
      if (!sel.ok()) return sel.status();
      stmt->select = std::move(sel).value();
    } else if (t.IsKeyword("INSERT")) {
      stmt->kind = StatementKind::kInsert;
      auto ins = ParseInsert();
      if (!ins.ok()) return ins.status();
      stmt->insert = std::move(ins).value();
    } else if (t.IsKeyword("UPDATE")) {
      stmt->kind = StatementKind::kUpdate;
      auto upd = ParseUpdate();
      if (!upd.ok()) return upd.status();
      stmt->update = std::move(upd).value();
    } else if (t.IsKeyword("DELETE")) {
      stmt->kind = StatementKind::kDelete;
      auto d = ParseDelete();
      if (!d.ok()) return d.status();
      stmt->del = std::move(d).value();
    } else {
      return Error("expected SELECT, INSERT, UPDATE or DELETE");
    }
    if (!Peek().Is(TokenType::kEnd)) {
      return Error("trailing tokens after statement");
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Accept(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptOp(const char* op) {
    if (Peek().IsOp(op)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptType(TokenType t) {
    if (Peek().Is(t)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Expect(const char* kw) {
    if (!Accept(kw)) return ErrorStatus(std::string("expected ") + kw);
    return Status::OK();
  }
  Status ExpectType(TokenType t, const char* what) {
    if (!AcceptType(t)) {
      return ErrorStatus(std::string("expected ") + what);
    }
    return Status::OK();
  }

  Status ErrorStatus(const std::string& msg) const {
    return Status::InvalidArgument(msg + " near offset " +
                                   std::to_string(Peek().position) + " ('" +
                                   Peek().text + "')");
  }
  template <typename T = std::unique_ptr<Statement>>
  Result<T> Error(const std::string& msg) const {
    return ErrorStatus(msg);
  }

  // ---- SELECT ----

  Result<std::unique_ptr<SelectStmt>> ParseSelect() {
    APOLLO_RETURN_NOT_OK(Expect("SELECT"));
    auto sel = std::make_unique<SelectStmt>();
    if (Accept("DISTINCT")) sel->distinct = true;

    // Select list.
    while (true) {
      SelectItem item;
      auto e = ParseExpr();
      if (!e.ok()) return e.status();
      item.expr = std::move(e).value();
      if (Accept("AS")) {
        if (!Peek().Is(TokenType::kIdentifier)) {
          return Error<std::unique_ptr<SelectStmt>>("expected alias");
        }
        item.alias = Advance().text;
      } else if (Peek().Is(TokenType::kIdentifier) &&
                 !Peek().IsKeyword("FROM")) {
        item.alias = Advance().text;
      }
      sel->items.push_back(std::move(item));
      if (!AcceptType(TokenType::kComma)) break;
    }

    APOLLO_RETURN_NOT_OK(Expect("FROM"));
    // FROM list with optional comma joins and explicit JOIN..ON.
    auto first = ParseTableRef();
    if (!first.ok()) return first.status();
    sel->tables.push_back(std::move(first).value());
    while (true) {
      if (AcceptType(TokenType::kComma)) {
        auto tr = ParseTableRef();
        if (!tr.ok()) return tr.status();
        sel->tables.push_back(std::move(tr).value());
        continue;
      }
      bool is_join = Peek().IsKeyword("JOIN") || Peek().IsKeyword("INNER");
      if (is_join) {
        Accept("INNER");
        APOLLO_RETURN_NOT_OK(Expect("JOIN"));
        JoinClause jc;
        auto tr = ParseTableRef();
        if (!tr.ok()) return tr.status();
        jc.table = std::move(tr).value();
        APOLLO_RETURN_NOT_OK(Expect("ON"));
        auto on = ParseExpr();
        if (!on.ok()) return on.status();
        jc.on = std::move(on).value();
        sel->joins.push_back(std::move(jc));
        continue;
      }
      break;
    }

    if (Accept("WHERE")) {
      auto w = ParseExpr();
      if (!w.ok()) return w.status();
      sel->where = std::move(w).value();
    }
    if (Accept("GROUP")) {
      APOLLO_RETURN_NOT_OK(Expect("BY"));
      while (true) {
        auto g = ParseExpr();
        if (!g.ok()) return g.status();
        sel->group_by.push_back(std::move(g).value());
        if (!AcceptType(TokenType::kComma)) break;
      }
    }
    if (Accept("ORDER")) {
      APOLLO_RETURN_NOT_OK(Expect("BY"));
      while (true) {
        OrderItem oi;
        auto e = ParseExpr();
        if (!e.ok()) return e.status();
        oi.expr = std::move(e).value();
        if (Accept("DESC")) {
          oi.desc = true;
        } else {
          Accept("ASC");
        }
        sel->order_by.push_back(std::move(oi));
        if (!AcceptType(TokenType::kComma)) break;
      }
    }
    if (Accept("LIMIT")) {
      if (!Peek().Is(TokenType::kInteger)) {
        return Error<std::unique_ptr<SelectStmt>>("expected LIMIT count");
      }
      sel->limit = std::stoll(Advance().text);
    }
    return sel;
  }

  Result<TableRef> ParseTableRef() {
    if (!Peek().Is(TokenType::kIdentifier)) {
      return Error<TableRef>("expected table name");
    }
    TableRef tr;
    tr.table = Advance().text;
    if (Accept("AS")) {
      if (!Peek().Is(TokenType::kIdentifier)) {
        return Error<TableRef>("expected table alias");
      }
      tr.alias = Advance().text;
    } else if (Peek().Is(TokenType::kIdentifier) && !IsClauseKeyword(Peek())) {
      tr.alias = Advance().text;
    }
    return tr;
  }

  static bool IsClauseKeyword(const Token& t) {
    static const char* kws[] = {"WHERE", "GROUP", "ORDER", "LIMIT", "JOIN",
                                "INNER", "ON",    "AS",    "SET"};
    for (const char* k : kws) {
      if (t.IsKeyword(k)) return true;
    }
    return false;
  }

  // ---- INSERT ----

  Result<std::unique_ptr<InsertStmt>> ParseInsert() {
    APOLLO_RETURN_NOT_OK(Expect("INSERT"));
    APOLLO_RETURN_NOT_OK(Expect("INTO"));
    if (!Peek().Is(TokenType::kIdentifier)) {
      return Error<std::unique_ptr<InsertStmt>>("expected table name");
    }
    auto ins = std::make_unique<InsertStmt>();
    ins->table = Advance().text;
    if (AcceptType(TokenType::kLeftParen)) {
      while (true) {
        if (!Peek().Is(TokenType::kIdentifier)) {
          return Error<std::unique_ptr<InsertStmt>>("expected column name");
        }
        ins->columns.push_back(Advance().text);
        if (AcceptType(TokenType::kComma)) continue;
        break;
      }
      APOLLO_RETURN_NOT_OK(ExpectType(TokenType::kRightParen, ")"));
    }
    APOLLO_RETURN_NOT_OK(Expect("VALUES"));
    while (true) {
      APOLLO_RETURN_NOT_OK(ExpectType(TokenType::kLeftParen, "("));
      std::vector<std::unique_ptr<Expr>> row;
      while (true) {
        auto e = ParseExpr();
        if (!e.ok()) return e.status();
        row.push_back(std::move(e).value());
        if (AcceptType(TokenType::kComma)) continue;
        break;
      }
      APOLLO_RETURN_NOT_OK(ExpectType(TokenType::kRightParen, ")"));
      ins->rows.push_back(std::move(row));
      if (!AcceptType(TokenType::kComma)) break;
    }
    return ins;
  }

  // ---- UPDATE ----

  Result<std::unique_ptr<UpdateStmt>> ParseUpdate() {
    APOLLO_RETURN_NOT_OK(Expect("UPDATE"));
    if (!Peek().Is(TokenType::kIdentifier)) {
      return Error<std::unique_ptr<UpdateStmt>>("expected table name");
    }
    auto upd = std::make_unique<UpdateStmt>();
    upd->table = Advance().text;
    APOLLO_RETURN_NOT_OK(Expect("SET"));
    while (true) {
      if (!Peek().Is(TokenType::kIdentifier)) {
        return Error<std::unique_ptr<UpdateStmt>>("expected column name");
      }
      std::string col = Advance().text;
      if (!AcceptOp("=")) {
        return Error<std::unique_ptr<UpdateStmt>>("expected '='");
      }
      auto e = ParseExpr();
      if (!e.ok()) return e.status();
      upd->assignments.emplace_back(std::move(col), std::move(e).value());
      if (!AcceptType(TokenType::kComma)) break;
    }
    if (Accept("WHERE")) {
      auto w = ParseExpr();
      if (!w.ok()) return w.status();
      upd->where = std::move(w).value();
    }
    return upd;
  }

  // ---- DELETE ----

  Result<std::unique_ptr<DeleteStmt>> ParseDelete() {
    APOLLO_RETURN_NOT_OK(Expect("DELETE"));
    APOLLO_RETURN_NOT_OK(Expect("FROM"));
    if (!Peek().Is(TokenType::kIdentifier)) {
      return Error<std::unique_ptr<DeleteStmt>>("expected table name");
    }
    auto d = std::make_unique<DeleteStmt>();
    d->table = Advance().text;
    if (Accept("WHERE")) {
      auto w = ParseExpr();
      if (!w.ok()) return w.status();
      d->where = std::move(w).value();
    }
    return d;
  }

  // ---- Expressions (precedence climbing) ----

  Result<std::unique_ptr<Expr>> ParseExpr() { return ParseOr(); }

  Result<std::unique_ptr<Expr>> ParseOr() {
    auto lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    auto node = std::move(lhs).value();
    while (Accept("OR")) {
      auto rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      node = Expr::MakeBinary(BinOp::kOr, std::move(node),
                              std::move(rhs).value());
    }
    return node;
  }

  Result<std::unique_ptr<Expr>> ParseAnd() {
    auto lhs = ParseNot();
    if (!lhs.ok()) return lhs;
    auto node = std::move(lhs).value();
    while (Peek().IsKeyword("AND")) {
      ++pos_;
      auto rhs = ParseNot();
      if (!rhs.ok()) return rhs;
      node = Expr::MakeBinary(BinOp::kAnd, std::move(node),
                              std::move(rhs).value());
    }
    return node;
  }

  Result<std::unique_ptr<Expr>> ParseNot() {
    if (Accept("NOT")) {
      auto inner = ParseNot();
      if (!inner.ok()) return inner;
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kNot;
      e->children.push_back(std::move(inner).value());
      return e;
    }
    return ParseComparison();
  }

  Result<std::unique_ptr<Expr>> ParseComparison() {
    auto lhs = ParseAdditive();
    if (!lhs.ok()) return lhs;
    auto node = std::move(lhs).value();

    // IS [NOT] NULL
    if (Accept("IS")) {
      bool negated = Accept("NOT");
      APOLLO_RETURN_NOT_OK(Expect("NULL"));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kIsNull;
      e->negated = negated;
      e->children.push_back(std::move(node));
      return e;
    }
    // [NOT] IN ( literals ) / [NOT] BETWEEN a AND b / [NOT] LIKE p
    bool negated = false;
    if (Peek().IsKeyword("NOT") &&
        (Peek(1).IsKeyword("IN") || Peek(1).IsKeyword("BETWEEN") ||
         Peek(1).IsKeyword("LIKE"))) {
      negated = true;
      ++pos_;
    }
    if (Accept("IN")) {
      APOLLO_RETURN_NOT_OK(ExpectType(TokenType::kLeftParen, "("));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kInList;
      e->negated = negated;
      e->children.push_back(std::move(node));
      while (true) {
        auto item = ParseAdditive();
        if (!item.ok()) return item;
        e->children.push_back(std::move(item).value());
        if (AcceptType(TokenType::kComma)) continue;
        break;
      }
      APOLLO_RETURN_NOT_OK(ExpectType(TokenType::kRightParen, ")"));
      return e;
    }
    if (Accept("BETWEEN")) {
      auto lo = ParseAdditive();
      if (!lo.ok()) return lo;
      APOLLO_RETURN_NOT_OK(Expect("AND"));
      auto hi = ParseAdditive();
      if (!hi.ok()) return hi;
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBetween;
      e->negated = negated;
      e->children.push_back(std::move(node));
      e->children.push_back(std::move(lo).value());
      e->children.push_back(std::move(hi).value());
      return e;
    }
    if (Accept("LIKE")) {
      auto rhs = ParseAdditive();
      if (!rhs.ok()) return rhs;
      auto e = Expr::MakeBinary(BinOp::kLike, std::move(node),
                                std::move(rhs).value());
      e->negated = negated;
      return e;
    }

    struct OpMap {
      const char* text;
      BinOp op;
    };
    static const OpMap ops[] = {
        {"=", BinOp::kEq},  {"<>", BinOp::kNe}, {"<=", BinOp::kLe},
        {">=", BinOp::kGe}, {"<", BinOp::kLt},  {">", BinOp::kGt},
    };
    for (const auto& m : ops) {
      if (AcceptOp(m.text)) {
        auto rhs = ParseAdditive();
        if (!rhs.ok()) return rhs;
        return Expr::MakeBinary(m.op, std::move(node),
                                std::move(rhs).value());
      }
    }
    return node;
  }

  Result<std::unique_ptr<Expr>> ParseAdditive() {
    auto lhs = ParseMultiplicative();
    if (!lhs.ok()) return lhs;
    auto node = std::move(lhs).value();
    while (true) {
      if (AcceptOp("+")) {
        auto rhs = ParseMultiplicative();
        if (!rhs.ok()) return rhs;
        node = Expr::MakeBinary(BinOp::kAdd, std::move(node),
                                std::move(rhs).value());
      } else if (AcceptOp("-")) {
        auto rhs = ParseMultiplicative();
        if (!rhs.ok()) return rhs;
        node = Expr::MakeBinary(BinOp::kSub, std::move(node),
                                std::move(rhs).value());
      } else {
        break;
      }
    }
    return node;
  }

  Result<std::unique_ptr<Expr>> ParseMultiplicative() {
    auto lhs = ParseUnary();
    if (!lhs.ok()) return lhs;
    auto node = std::move(lhs).value();
    while (true) {
      if (AcceptOp("*")) {
        auto rhs = ParseUnary();
        if (!rhs.ok()) return rhs;
        node = Expr::MakeBinary(BinOp::kMul, std::move(node),
                                std::move(rhs).value());
      } else if (AcceptOp("/")) {
        auto rhs = ParseUnary();
        if (!rhs.ok()) return rhs;
        node = Expr::MakeBinary(BinOp::kDiv, std::move(node),
                                std::move(rhs).value());
      } else {
        break;
      }
    }
    return node;
  }

  Result<std::unique_ptr<Expr>> ParseUnary() {
    if (AcceptOp("-")) {
      auto inner = ParseUnary();
      if (!inner.ok()) return inner;
      // Fold negation of literals directly.
      auto& node = inner.value();
      if (node->kind == ExprKind::kLiteral && node->literal.is_int()) {
        node->literal = common::Value::Int(-node->literal.AsInt());
        return std::move(inner).value();
      }
      if (node->kind == ExprKind::kLiteral && node->literal.is_double()) {
        node->literal = common::Value::Double(-node->literal.AsDoubleRaw());
        return std::move(inner).value();
      }
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnaryMinus;
      e->children.push_back(std::move(inner).value());
      return e;
    }
    return ParsePrimary();
  }

  static bool IsAggregateName(const std::string& name) {
    return name == "COUNT" || name == "MIN" || name == "MAX" ||
           name == "SUM" || name == "AVG";
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInteger: {
        auto e = Expr::MakeLiteral(common::Value::Int(std::stoll(t.text)));
        ++pos_;
        return e;
      }
      case TokenType::kFloat: {
        auto e = Expr::MakeLiteral(common::Value::Double(std::stod(t.text)));
        ++pos_;
        return e;
      }
      case TokenType::kString: {
        auto e = Expr::MakeLiteral(common::Value::Str(t.text));
        ++pos_;
        return e;
      }
      case TokenType::kPlaceholder: {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kPlaceholder;
        e->placeholder_index = next_placeholder_++;
        ++pos_;
        return e;
      }
      case TokenType::kLeftParen: {
        ++pos_;
        auto inner = ParseExpr();
        if (!inner.ok()) return inner;
        APOLLO_RETURN_NOT_OK(ExpectType(TokenType::kRightParen, ")"));
        return inner;
      }
      case TokenType::kOperator:
        if (t.text == "*") {
          ++pos_;
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kStar;
          return e;
        }
        return Error<std::unique_ptr<Expr>>("unexpected operator");
      case TokenType::kIdentifier: {
        if (t.IsKeyword("NULL")) {
          ++pos_;
          return Expr::MakeLiteral(common::Value::Null());
        }
        std::string name = t.text;
        // Function call?
        if (Peek(1).Is(TokenType::kLeftParen) && IsAggregateName(name)) {
          pos_ += 2;  // name + '('
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kFuncCall;
          e->func = name;
          if (Accept("DISTINCT")) e->distinct = true;
          auto arg = ParseExpr();
          if (!arg.ok()) return arg;
          e->children.push_back(std::move(arg).value());
          APOLLO_RETURN_NOT_OK(ExpectType(TokenType::kRightParen, ")"));
          return e;
        }
        ++pos_;
        // Qualified column?
        if (Peek().IsOp(".")) {
          ++pos_;
          if (Peek().Is(TokenType::kIdentifier)) {
            std::string col = Advance().text;
            return Expr::MakeColumn(name, col);
          }
          if (Peek().IsOp("*")) {
            ++pos_;
            auto e = std::make_unique<Expr>();
            e->kind = ExprKind::kStar;
            e->table = name;
            return e;
          }
          return Error<std::unique_ptr<Expr>>("expected column after '.'");
        }
        return Expr::MakeColumn("", name);
      }
      default:
        return Error<std::unique_ptr<Expr>>("unexpected token");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int next_placeholder_ = 0;
};

}  // namespace

util::Result<std::unique_ptr<Statement>> Parse(const std::string& sql) {
  auto tokens = Tokenize(sql);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.ParseStatement();
}

}  // namespace apollo::sql
