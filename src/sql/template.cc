#include "sql/template.h"

#include "sql/parser.h"
#include "sql/printer.h"
#include "util/hash.h"

namespace apollo::sql {

TemplateInfo TemplatizeStatement(const Statement& stmt) {
  TemplateInfo info;
  PrintOptions strip;
  strip.strip_literals = true;
  strip.collect_literals = &info.params;
  info.template_text = PrintStatement(stmt, strip);
  info.canonical_text = PrintStatement(stmt, PrintOptions{});
  info.fingerprint = util::Hash64(info.template_text);
  info.read_only = stmt.IsReadOnly();
  info.tables_read = stmt.TablesRead();
  info.tables_written = stmt.TablesWritten();
  // Placeholders = stripped literals + pre-existing unbound placeholders.
  int unbound = 0;
  VisitExprs(stmt, [&](const Expr& e) {
    if (e.kind == ExprKind::kPlaceholder) ++unbound;
  });
  info.num_placeholders = static_cast<int>(info.params.size()) + unbound;
  return info;
}

util::Result<TemplateInfo> Templatize(const std::string& sql) {
  auto stmt = Parse(sql);
  if (!stmt.ok()) return stmt.status();
  return TemplatizeStatement(**stmt);
}

util::Status InstantiateTo(const std::string& template_text,
                           const std::vector<common::Value>& params,
                           std::string* out) {
  out->clear();
  out->reserve(template_text.size() + params.size() * 8);
  size_t next = 0;
  for (char c : template_text) {
    if (c == '?') {
      if (next >= params.size()) {
        return util::Status::InvalidArgument(
            "not enough parameters to instantiate template");
      }
      *out += params[next++].ToSqlLiteral();
    } else {
      *out += c;
    }
  }
  if (next != params.size()) {
    return util::Status::InvalidArgument(
        "too many parameters for template: expected " +
        std::to_string(next) + ", got " + std::to_string(params.size()));
  }
  return util::Status::OK();
}

util::Result<std::string> Instantiate(
    const std::string& template_text,
    const std::vector<common::Value>& params) {
  std::string out;
  APOLLO_RETURN_NOT_OK(InstantiateTo(template_text, params, &out));
  return out;
}

}  // namespace apollo::sql
