#include "sql/token.h"

#include <cctype>

#include "util/string_util.h"

namespace apollo::sql {

namespace {
bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
}  // namespace

util::Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(sql[j])) ++j;
      out.push_back({TokenType::kIdentifier,
                     util::ToUpperAscii(sql.substr(i, j - i)), start});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      if (j < n && sql[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(sql[j + 1]))) {
        is_float = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      }
      out.push_back({is_float ? TokenType::kFloat : TokenType::kInteger,
                     sql.substr(i, j - i), start});
      i = j;
      continue;
    }
    if (c == '\'') {
      std::string text;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {
            text += '\'';
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        text += sql[j];
        ++j;
      }
      if (!closed) {
        return util::Status::InvalidArgument(
            "unterminated string literal at offset " + std::to_string(start));
      }
      out.push_back({TokenType::kString, std::move(text), start});
      i = j;
      continue;
    }
    if (c == '?') {
      out.push_back({TokenType::kPlaceholder, "?", start});
      ++i;
      continue;
    }
    if (c == '@') {
      size_t j = i + 1;
      while (j < n && IsIdentChar(sql[j])) ++j;
      out.push_back({TokenType::kPlaceholder,
                     util::ToUpperAscii(sql.substr(i, j - i)), start});
      i = j;
      continue;
    }
    if (c == ',') {
      out.push_back({TokenType::kComma, ",", start});
      ++i;
      continue;
    }
    if (c == '(') {
      out.push_back({TokenType::kLeftParen, "(", start});
      ++i;
      continue;
    }
    if (c == ')') {
      out.push_back({TokenType::kRightParen, ")", start});
      ++i;
      continue;
    }
    // Multi-char operators first.
    auto two = sql.substr(i, 2);
    if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
      out.push_back({TokenType::kOperator, two == "!=" ? "<>" : two, start});
      i += 2;
      continue;
    }
    if (c == '=' || c == '<' || c == '>' || c == '+' || c == '-' ||
        c == '*' || c == '/' || c == '.' || c == ';') {
      if (c == ';') {
        ++i;  // statement terminator, ignored
        continue;
      }
      out.push_back({TokenType::kOperator, std::string(1, c), start});
      ++i;
      continue;
    }
    return util::Status::InvalidArgument("unexpected character '" +
                                         std::string(1, c) + "' at offset " +
                                         std::to_string(start));
  }
  out.push_back({TokenType::kEnd, "", n});
  return out;
}

}  // namespace apollo::sql
