#include "sql/ast.h"

#include <algorithm>

namespace apollo::sql {

std::string_view BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kEq: return "=";
    case BinOp::kNe: return "<>";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "AND";
    case BinOp::kOr: return "OR";
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kLike: return "LIKE";
  }
  return "?";
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->op = op;
  out->literal = literal;
  out->table = table;
  out->column = column;
  out->func = func;
  out->distinct = distinct;
  out->negated = negated;
  out->placeholder_index = placeholder_index;
  out->children.reserve(children.size());
  for (const auto& c : children) out->children.push_back(c->Clone());
  return out;
}

std::unique_ptr<Expr> Expr::MakeLiteral(common::Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<Expr> Expr::MakeColumn(std::string table,
                                       std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

std::unique_ptr<Expr> Expr::MakeBinary(BinOp op, std::unique_ptr<Expr> l,
                                       std::unique_ptr<Expr> r) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = op;
  e->children.push_back(std::move(l));
  e->children.push_back(std::move(r));
  return e;
}

namespace {
void AddUnique(std::vector<std::string>& v, const std::string& s) {
  if (std::find(v.begin(), v.end(), s) == v.end()) v.push_back(s);
}
}  // namespace

std::vector<std::string> Statement::TablesRead() const {
  std::vector<std::string> out;
  switch (kind) {
    case StatementKind::kSelect:
      for (const auto& t : select->tables) AddUnique(out, t.table);
      for (const auto& j : select->joins) AddUnique(out, j.table.table);
      break;
    case StatementKind::kUpdate:
      // UPDATE reads the table it filters over.
      AddUnique(out, update->table);
      break;
    case StatementKind::kDelete:
      AddUnique(out, del->table);
      break;
    case StatementKind::kInsert:
      break;
  }
  return out;
}

std::vector<std::string> Statement::TablesWritten() const {
  std::vector<std::string> out;
  switch (kind) {
    case StatementKind::kSelect:
      break;
    case StatementKind::kInsert:
      AddUnique(out, insert->table);
      break;
    case StatementKind::kUpdate:
      AddUnique(out, update->table);
      break;
    case StatementKind::kDelete:
      AddUnique(out, del->table);
      break;
  }
  return out;
}

std::vector<std::string> Statement::TablesTouched() const {
  std::vector<std::string> out = TablesRead();
  for (const auto& t : TablesWritten()) AddUnique(out, t);
  return out;
}

namespace {

std::unique_ptr<Expr> CloneOrNull(const std::unique_ptr<Expr>& e) {
  return e ? e->Clone() : nullptr;
}

void VisitExpr(const Expr& e, const std::function<void(const Expr&)>& fn) {
  fn(e);
  for (const auto& c : e.children) VisitExpr(*c, fn);
}

void VisitExprMut(Expr& e, const std::function<void(Expr&)>& fn) {
  fn(e);
  for (auto& c : e.children) VisitExprMut(*c, fn);
}

}  // namespace

std::unique_ptr<Statement> Statement::Clone() const {
  auto out = std::make_unique<Statement>();
  out->kind = kind;
  switch (kind) {
    case StatementKind::kSelect: {
      auto s = std::make_unique<SelectStmt>();
      s->distinct = select->distinct;
      for (const auto& it : select->items) {
        s->items.push_back({it.expr->Clone(), it.alias});
      }
      s->tables = select->tables;
      for (const auto& j : select->joins) {
        s->joins.push_back({j.table, CloneOrNull(j.on)});
      }
      s->where = CloneOrNull(select->where);
      for (const auto& g : select->group_by) s->group_by.push_back(g->Clone());
      for (const auto& o : select->order_by) {
        s->order_by.push_back({o.expr->Clone(), o.desc});
      }
      s->limit = select->limit;
      out->select = std::move(s);
      break;
    }
    case StatementKind::kInsert: {
      auto s = std::make_unique<InsertStmt>();
      s->table = insert->table;
      s->columns = insert->columns;
      for (const auto& row : insert->rows) {
        std::vector<std::unique_ptr<Expr>> r;
        for (const auto& e : row) r.push_back(e->Clone());
        s->rows.push_back(std::move(r));
      }
      out->insert = std::move(s);
      break;
    }
    case StatementKind::kUpdate: {
      auto s = std::make_unique<UpdateStmt>();
      s->table = update->table;
      for (const auto& [col, e] : update->assignments) {
        s->assignments.emplace_back(col, e->Clone());
      }
      s->where = CloneOrNull(update->where);
      out->update = std::move(s);
      break;
    }
    case StatementKind::kDelete: {
      auto s = std::make_unique<DeleteStmt>();
      s->table = del->table;
      s->where = CloneOrNull(del->where);
      out->del = std::move(s);
      break;
    }
  }
  return out;
}

void VisitExprs(const Statement& stmt,
                const std::function<void(const Expr&)>& fn) {
  switch (stmt.kind) {
    case StatementKind::kSelect: {
      const auto& s = *stmt.select;
      for (const auto& it : s.items) VisitExpr(*it.expr, fn);
      for (const auto& j : s.joins) {
        if (j.on) VisitExpr(*j.on, fn);
      }
      if (s.where) VisitExpr(*s.where, fn);
      for (const auto& g : s.group_by) VisitExpr(*g, fn);
      for (const auto& o : s.order_by) VisitExpr(*o.expr, fn);
      break;
    }
    case StatementKind::kInsert:
      for (const auto& row : stmt.insert->rows) {
        for (const auto& e : row) VisitExpr(*e, fn);
      }
      break;
    case StatementKind::kUpdate:
      for (const auto& [col, e] : stmt.update->assignments) {
        VisitExpr(*e, fn);
      }
      if (stmt.update->where) VisitExpr(*stmt.update->where, fn);
      break;
    case StatementKind::kDelete:
      if (stmt.del->where) VisitExpr(*stmt.del->where, fn);
      break;
  }
}

void VisitExprsMut(Statement& stmt, const std::function<void(Expr&)>& fn) {
  switch (stmt.kind) {
    case StatementKind::kSelect: {
      auto& s = *stmt.select;
      for (auto& it : s.items) VisitExprMut(*it.expr, fn);
      for (auto& j : s.joins) {
        if (j.on) VisitExprMut(*j.on, fn);
      }
      if (s.where) VisitExprMut(*s.where, fn);
      for (auto& g : s.group_by) VisitExprMut(*g, fn);
      for (auto& o : s.order_by) VisitExprMut(*o.expr, fn);
      break;
    }
    case StatementKind::kInsert:
      for (auto& row : stmt.insert->rows) {
        for (auto& e : row) VisitExprMut(*e, fn);
      }
      break;
    case StatementKind::kUpdate:
      for (auto& [col, e] : stmt.update->assignments) {
        VisitExprMut(*e, fn);
      }
      if (stmt.update->where) VisitExprMut(*stmt.update->where, fn);
      break;
    case StatementKind::kDelete:
      if (stmt.del->where) VisitExprMut(*stmt.del->where, fn);
      break;
  }
}

}  // namespace apollo::sql
