#include "sql/template_cache.h"

#include <mutex>
#include <utility>

#include "sql/parser.h"

namespace apollo::sql {

namespace {

/// Type-strict equality: the lex-key → template mapping is only recorded
/// when the scanner extracted exactly what the full parse extracted, so a
/// fast-path hit is bit-identical by construction. Value::operator== is too
/// lenient here (INT 3 == DOUBLE 3.0 would mask a divergence).
bool SameParams(const std::vector<common::Value>& a,
                const std::vector<common::Value>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].type() != b[i].type() || a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace

util::Result<AdmittedQuery> TemplateCache::Admit(const std::string& sql) {
  // Scratch reused across admissions on this thread: the key buffer keeps
  // its capacity (params are moved out on every hit, so only the small
  // reserve recurs).
  thread_local LexTemplateResult lex;
  const bool lex_ok = LexTemplatize(sql, &lex);
  if (lex_ok) {
    CachedTemplatePtr tpl;
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      auto it = by_lex_key_.find(lex.key);
      if (it != by_lex_key_.end()) tpl = it->second;
    }
    if (tpl != nullptr &&
        static_cast<int>(lex.params.size()) == tpl->info.num_placeholders) {
      AdmittedQuery q;
      q.tpl = std::move(tpl);
      q.params = std::move(lex.params);
      q.via_fast_path = true;
      APOLLO_RETURN_NOT_OK(
          InstantiateTo(q.tpl->info.template_text, q.params,
                        &q.canonical_text));
      fast_hits_.fetch_add(1, std::memory_order_relaxed);
      return q;
    }
  }

  // First sight / bail: full parse, then seed the cache so the next query
  // with this lex key takes the fast path.
  auto info = Templatize(sql);
  if (!info.ok()) return info.status();
  fallbacks_.fetch_add(1, std::memory_order_relaxed);

  AdmittedQuery q;
  q.params = std::move(info->params);
  q.canonical_text = std::move(info->canonical_text);
  info->params.clear();
  info->canonical_text.clear();
  const bool map_lex_key = lex_ok && SameParams(lex.params, q.params);
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    q.tpl = InternLocked(std::move(*info));
    if (map_lex_key) by_lex_key_.emplace(std::move(lex.key), q.tpl);
  }
  return q;
}

CachedTemplatePtr TemplateCache::GetByFingerprint(uint64_t fingerprint) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = by_fingerprint_.find(fingerprint);
  return it != by_fingerprint_.end() ? it->second : nullptr;
}

CachedTemplatePtr TemplateCache::Intern(const TemplateInfo& info) {
  TemplateInfo tpl_info = info;
  tpl_info.params.clear();
  tpl_info.canonical_text.clear();
  std::unique_lock<std::shared_mutex> lock(mu_);
  return InternLocked(std::move(tpl_info));
}

size_t TemplateCache::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return by_fingerprint_.size();
}

CachedTemplatePtr TemplateCache::InternLocked(TemplateInfo&& info) {
  auto it = by_fingerprint_.find(info.fingerprint);
  if (it != by_fingerprint_.end()) return it->second;
  auto entry = std::make_shared<CachedTemplate>();
  entry->info = std::move(info);
  // Re-parse the template text once to get the parameterized statement. The
  // parser assigns placeholder indices in token order, which is template
  // print order — i.e. the order of every admitted query's params vector.
  auto stmt = Parse(entry->info.template_text);
  if (stmt.ok()) entry->statement = std::move(*stmt);
  CachedTemplatePtr shared = std::move(entry);
  by_fingerprint_.emplace(shared->info.fingerprint, shared);
  return shared;
}

}  // namespace apollo::sql
