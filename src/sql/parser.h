// Recursive-descent parser for the Apollo SQL dialect (see ast.h).
#pragma once

#include <memory>
#include <string>

#include "sql/ast.h"
#include "util/result.h"

namespace apollo::sql {

/// Parses a single SQL statement.
util::Result<std::unique_ptr<Statement>> Parse(const std::string& sql);

}  // namespace apollo::sql
