#include "sql/fast_path.h"

#include <charconv>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <system_error>

namespace apollo::sql {

namespace {

// Branch-based ASCII classification, mirroring the tokenizer's C-locale
// behaviour (bytes outside ASCII classify as nothing) without the per-call
// locale machinery.
bool IsSpaceAscii(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
bool IsAlphaAscii(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}
bool IsDigit(char c) { return c >= '0' && c <= '9'; }
bool IsIdentStart(char c) { return IsAlphaAscii(c) || c == '_'; }
bool IsIdentChar(char c) { return IsAlphaAscii(c) || IsDigit(c) || c == '_'; }
char ToUpperAsciiChar(char c) {
  return c >= 'a' && c <= 'z' ? static_cast<char>(c - ('a' - 'A')) : c;
}

/// The previous emitted token, tracked for the three context-sensitive
/// scanner rules: unary-minus folding, IS [NOT] NULL, and LIMIT integers.
/// `text` views either a string literal or the uppercased identifier inside
/// the key buffer — valid because the key is reserved to its worst-case
/// size up front and never reallocates.
struct PrevToken {
  enum Kind {
    kNone,     // statement start
    kIdent,    // identifier / keyword (uppercased text retained)
    kLiteral,  // a stripped literal ('?' in the key)
    kKeptInt,  // a LIMIT count kept verbatim in the key
    kOp,       // operator (text retained)
    kComma,
    kLParen,
    kRParen,
  };
  Kind kind = kNone;
  std::string_view text;  // identifiers (uppercase) and operators only
};

/// Keywords after which an expression starts, so the parser's ParseUnary
/// sees a following '-' and folds it into a numeric literal. Anything that
/// can only legally be followed by a name/list ('FROM', 'SET', 'VALUES',
/// ...) is deliberately absent: '-' after those is a parse error, which the
/// fallback reproduces.
bool IsExprStartKeyword(std::string_view id) {
  return id == "SELECT" || id == "DISTINCT" || id == "WHERE" || id == "ON" ||
         id == "AND" || id == "OR" || id == "NOT" || id == "LIKE" ||
         id == "BETWEEN" || id == "BY";
}

/// How the scanner should treat '-' immediately before a numeric literal.
enum class MinusContext {
  kFold,    // unary position: parser folds the sign into the literal
  kBinary,  // binary subtraction: literal stays positive, '-' stays a token
  kBail,    // ambiguous at the lexical level (e.g. after '-', '*', '.')
};

MinusContext ClassifyMinus(const PrevToken& prev) {
  switch (prev.kind) {
    case PrevToken::kComma:
    case PrevToken::kLParen:
      return MinusContext::kFold;
    case PrevToken::kOp:
      if (prev.text == "=" || prev.text == "<>" || prev.text == "<" ||
          prev.text == "<=" || prev.text == ">" || prev.text == ">=" ||
          prev.text == "+" || prev.text == "/") {
        return MinusContext::kFold;
      }
      // '-' (double negation folds twice), '*' (multiply vs. select-star)
      // and '.' are ambiguous without a parse.
      return MinusContext::kBail;
    case PrevToken::kIdent:
      return IsExprStartKeyword(prev.text) ? MinusContext::kFold
                                           : MinusContext::kBinary;
    case PrevToken::kRParen:
    case PrevToken::kLiteral:
      return MinusContext::kBinary;
    case PrevToken::kNone:
    case PrevToken::kKeptInt:
      return MinusContext::kBail;
  }
  return MinusContext::kBail;
}

}  // namespace

bool LexTemplatize(std::string_view sql, LexTemplateResult* out) {
  out->key.clear();
  out->params.clear();
  // Worst case: a space inserted before every source character ('A=B' ->
  // 'A = B'). Reserving it up front means the key never reallocates, so
  // string_views into it (PrevToken::text) stay valid for the whole scan.
  out->key.reserve(2 * sql.size() + 8);
  out->params.reserve(8);

  const size_t n = sql.size();
  size_t i = 0;
  PrevToken prev, prev2;
  bool first = true;

  auto emit = [&](std::string_view tok) {
    if (!out->key.empty()) out->key += ' ';
    out->key += tok;
  };
  auto advance_prev = [&](PrevToken::Kind kind, std::string_view text = {}) {
    prev2 = prev;
    prev.kind = kind;
    prev.text = text;
  };

  /// Scans the numeric token at `i` (which must start one) exactly like the
  /// tokenizer; integers convert via from_chars (same digits-only inputs
  /// and overflow outcomes as the parser's stoll), floats via the parser's
  /// own stod. Returns false on overflow — the fallback parse then reports
  /// whatever the old route reported.
  auto scan_number = [&](bool negate) -> bool {
    size_t j = i;
    bool is_float = false;
    while (j < n && IsDigit(sql[j])) ++j;
    if (j < n && sql[j] == '.' && j + 1 < n && IsDigit(sql[j + 1])) {
      is_float = true;
      ++j;
      while (j < n && IsDigit(sql[j])) ++j;
    }
    if (is_float) {
      try {
        double d = std::stod(std::string(sql.substr(i, j - i)));
        out->params.push_back(common::Value::Double(negate ? -d : d));
      } catch (const std::exception&) {
        return false;
      }
    } else {
      int64_t v = 0;
      auto [ptr, ec] =
          std::from_chars(sql.data() + i, sql.data() + j, v);
      if (ec != std::errc() || ptr != sql.data() + j) return false;
      out->params.push_back(common::Value::Int(negate ? -v : v));
    }
    emit("?");
    advance_prev(PrevToken::kLiteral);
    i = j;
    return true;
  };

  while (i < n) {
    char c = sql[i];
    if (IsSpaceAscii(c)) {
      ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(sql[j])) ++j;
      // Uppercase straight into the key; the identifier's view lives in the
      // key buffer (no temporary string).
      if (!out->key.empty()) out->key += ' ';
      const size_t id_begin = out->key.size();
      for (size_t k = i; k < j; ++k) out->key += ToUpperAsciiChar(sql[k]);
      std::string_view id(out->key.data() + id_begin, j - i);
      if (first) {
        if (id != "SELECT" && id != "INSERT" && id != "UPDATE" &&
            id != "DELETE") {
          return false;
        }
        first = false;
      }
      // NULL is a literal parameter except inside IS [NOT] NULL.
      bool is_null_test =
          prev.kind == PrevToken::kIdent &&
          (prev.text == "IS" ||
           (prev.text == "NOT" && prev2.kind == PrevToken::kIdent &&
            prev2.text == "IS"));
      if (id == "NULL" && !is_null_test) {
        out->params.push_back(common::Value::Null());
        out->key.resize(id_begin);  // replace the identifier with '?'
        out->key += '?';
        advance_prev(PrevToken::kLiteral);
      } else {
        advance_prev(PrevToken::kIdent, id);
      }
      i = j;
      continue;
    }
    if (IsDigit(c) || (c == '.' && i + 1 < n && IsDigit(sql[i + 1]))) {
      // A LIMIT count is part of the template text, not a parameter (the
      // canonical print inlines it), so keep it verbatim in the key. The
      // grammar only accepts a plain integer there; anything else is
      // stripped normally and the resulting key can never have been seeded
      // by a successful parse.
      if (IsDigit(c) && prev.kind == PrevToken::kIdent &&
          prev.text == "LIMIT") {
        size_t j = i;
        while (j < n && IsDigit(sql[j])) ++j;
        bool is_float =
            j < n && sql[j] == '.' && j + 1 < n && IsDigit(sql[j + 1]);
        if (!is_float) {
          emit(sql.substr(i, j - i));
          advance_prev(PrevToken::kKeptInt);
          i = j;
          continue;
        }
      }
      if (!scan_number(/*negate=*/false)) return false;
      continue;
    }
    if (c == '\'') {
      // Fast scan for the common no-escape case: one pass to the closing
      // quote, one allocation for the value.
      size_t j = i + 1;
      while (j < n && sql[j] != '\'') ++j;
      if (j >= n) return false;  // fallback reports the tokenizer error
      if (j + 1 >= n || sql[j + 1] != '\'') {
        out->params.push_back(
            common::Value::Str(std::string(sql.substr(i + 1, j - i - 1))));
        i = j + 1;
      } else {
        // Escaped quotes present: unescape '' -> ' as the tokenizer does.
        std::string text(sql.substr(i + 1, j - i - 1));
        j += 2;
        text += '\'';
        bool closed = false;
        while (j < n) {
          if (sql[j] == '\'') {
            if (j + 1 < n && sql[j + 1] == '\'') {
              text += '\'';
              j += 2;
              continue;
            }
            closed = true;
            ++j;
            break;
          }
          text += sql[j];
          ++j;
        }
        if (!closed) return false;
        out->params.push_back(common::Value::Str(std::move(text)));
        i = j;
      }
      emit("?");
      advance_prev(PrevToken::kLiteral);
      continue;
    }
    if (first) return false;  // statements must start with a keyword
    if (c == '?' || c == '@') return false;  // pre-bound placeholders: bail
    if (c == ',') {
      emit(",");
      advance_prev(PrevToken::kComma);
      ++i;
      continue;
    }
    if (c == '(') {
      emit("(");
      advance_prev(PrevToken::kLParen);
      ++i;
      continue;
    }
    if (c == ')') {
      emit(")");
      advance_prev(PrevToken::kRParen);
      ++i;
      continue;
    }
    if (i + 1 < n) {
      std::string_view two = sql.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
        std::string_view op = two == "!=" ? std::string_view("<>") : two;
        emit(op);
        advance_prev(PrevToken::kOp, op);
        i += 2;
        continue;
      }
    }
    if (c == ';') {
      ++i;  // statement terminator, ignored (as in the tokenizer)
      continue;
    }
    if (c == '-') {
      // Look past whitespace: does a numeric literal follow?
      size_t j = i + 1;
      while (j < n && IsSpaceAscii(sql[j])) ++j;
      bool number_next =
          j < n && (IsDigit(sql[j]) ||
                    (sql[j] == '.' && j + 1 < n && IsDigit(sql[j + 1])));
      if (number_next) {
        switch (ClassifyMinus(prev)) {
          case MinusContext::kBail:
            return false;
          case MinusContext::kFold: {
            i = j;
            if (!scan_number(/*negate=*/true)) return false;
            continue;
          }
          case MinusContext::kBinary:
            break;  // fall through: '-' is an ordinary operator token
        }
      }
      emit("-");
      advance_prev(PrevToken::kOp, "-");
      ++i;
      continue;
    }
    if (c == '=' || c == '<' || c == '>' || c == '+' || c == '*' ||
        c == '/' || c == '.') {
      static constexpr const char* kSingleOps = "=<>+*/.";
      const char* p = kSingleOps;
      while (*p != c) ++p;
      std::string_view op(p, 1);
      emit(op);
      advance_prev(PrevToken::kOp, op);
      ++i;
      continue;
    }
    return false;  // unexpected character: fallback reports it
  }
  return !first;
}

}  // namespace apollo::sql
